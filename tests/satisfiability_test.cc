#include "src/reasoner/satisfiability.h"

#include <gtest/gtest.h>

#include "tests/test_schemas.h"

namespace crsat {
namespace {

using crsat::testing::Figure1Schema;
using crsat::testing::IsaFreeUnsatSchema;
using crsat::testing::MeetingSchema;
using crsat::testing::MeetingSchemaWithEagerDiscussants;

TEST(SatisfiabilityTest, Figure1ClassesAreFinitelyUnsatisfiable) {
  // The paper's Figure 1: ISA + cardinalities force both classes empty in
  // every finite model.
  Schema schema = Figure1Schema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  EXPECT_FALSE(
      checker.IsClassSatisfiable(schema.FindClass("C").value()).value());
  EXPECT_FALSE(
      checker.IsClassSatisfiable(schema.FindClass("D").value()).value());
}

TEST(SatisfiabilityTest, Figure1WithoutIsaIsSatisfiable) {
  // Dropping the ISA statement removes the interaction: now D can be twice
  // as populous as C.
  SchemaBuilder builder;
  builder.AddClass("C");
  builder.AddClass("D");
  builder.AddRelationship("R", {{"V1", "C"}, {"V2", "D"}});
  builder.SetCardinality("C", "R", "V1", {2, std::nullopt});
  builder.SetCardinality("D", "R", "V2", {0, 1});
  Schema schema = builder.Build().value();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  EXPECT_TRUE(
      checker.IsClassSatisfiable(schema.FindClass("C").value()).value());
  EXPECT_TRUE(
      checker.IsClassSatisfiable(schema.FindClass("D").value()).value());
}

TEST(SatisfiabilityTest, MeetingSchemaAllClassesSatisfiable) {
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  EXPECT_TRUE(satisfiable[schema.FindClass("Speaker").value().value]);
  EXPECT_TRUE(satisfiable[schema.FindClass("Discussant").value().value]);
  EXPECT_TRUE(satisfiable[schema.FindClass("Talk").value().value]);
}

TEST(SatisfiabilityTest, MeetingSupportShowsSpeakersMustBeDiscussants) {
  // The schema forces #speakers == #discussants == #talks, so compound
  // classes with Speaker but without Discussant are empty in every model
  // (this is the support-level view of Figure 7's first inference).
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  AcceptableSupport support = checker.Support().value();
  auto positive = [&](std::uint64_t mask) {
    int index = expansion.ClassIndexOf(CompoundClass(mask));
    EXPECT_GE(index, 0);
    return static_cast<bool>(
        support.positive[checker.cr_system().class_vars[index]]);
  };
  EXPECT_FALSE(positive(0b001));  // {S}: pure speakers impossible.
  EXPECT_FALSE(positive(0b101));  // {S,T}: still lacks Discussant.
  EXPECT_TRUE(positive(0b011));   // {S,D}.
  EXPECT_TRUE(positive(0b100));   // {T}.
}

TEST(SatisfiabilityTest, Section33AdditionMakesEveryClassUnsatisfiable) {
  // Adding minc(Discussant, Holds, U1) = 2 makes the system unsolvable
  // (end of Section 3.3).
  Schema schema = MeetingSchemaWithEagerDiscussants();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  EXPECT_FALSE(satisfiable[0]);
  EXPECT_FALSE(satisfiable[1]);
  EXPECT_FALSE(satisfiable[2]);
}

TEST(SatisfiabilityTest, WitnessIsAnAcceptableSolutionOfTheSystem) {
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  AcceptableSupport support = checker.Support().value();
  const CrSystem& cr = checker.cr_system();
  EXPECT_TRUE(cr.system.IsSatisfiedBy(support.witness));
  // Acceptability: every relationship unknown with a zero component class
  // unknown is itself zero.
  for (const Dependency& dependency : checker.dependencies()) {
    for (VarId source : dependency.depends_on) {
      if (support.witness[source].IsZero()) {
        EXPECT_TRUE(support.witness[dependency.dependent].IsZero());
      }
    }
  }
}

TEST(SatisfiabilityTest, IntegerSolutionIsIntegralAndSatisfiesSystem) {
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  IntegerSolution solution = checker.AcceptableIntegerSolution().value();
  ASSERT_EQ(solution.class_counts.size(), expansion.classes().size());
  ASSERT_EQ(solution.rel_counts.size(), expansion.relationships().size());
  std::vector<Rational> values;
  for (const BigInt& count : solution.class_counts) {
    EXPECT_FALSE(count.IsNegative());
    values.push_back(Rational(count));
  }
  for (const BigInt& count : solution.rel_counts) {
    EXPECT_FALSE(count.IsNegative());
    values.push_back(Rational(count));
  }
  EXPECT_TRUE(checker.cr_system().system.IsSatisfiedBy(values));
  // The support is realized: some compound class containing Speaker is
  // populated.
  ClassId speaker = schema.FindClass("Speaker").value();
  bool speaker_populated = false;
  for (int index : expansion.ClassIndicesContaining(speaker)) {
    if (solution.class_counts[index].IsPositive()) {
      speaker_populated = true;
    }
  }
  EXPECT_TRUE(speaker_populated);
}

TEST(SatisfiabilityTest, TargetQueriesDistinguishCompoundTargets) {
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  int pure_speaker = expansion.ClassIndexOf(CompoundClass(0b001));
  int speaker_discussant = expansion.ClassIndexOf(CompoundClass(0b011));
  EXPECT_FALSE(checker.IsTargetSatisfiable({pure_speaker}).value());
  EXPECT_TRUE(checker.IsTargetSatisfiable({speaker_discussant}).value());
  EXPECT_TRUE(
      checker.IsTargetSatisfiable({pure_speaker, speaker_discussant})
          .value());
  EXPECT_FALSE(checker.IsTargetSatisfiable({}).value());
}

TEST(SatisfiabilityTest, FixpointAgreesWithTheorem34EnumerationOnMeeting) {
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  for (int c = 0; c < schema.num_classes(); ++c) {
    std::vector<int> target = expansion.ClassIndicesContaining(ClassId(c));
    bool fixpoint = checker.IsTargetSatisfiable(target).value();
    bool enumerated = IsTargetSatisfiableByEnumeration(
                          checker.cr_system(), checker.dependencies(), target)
                          .value();
    EXPECT_EQ(fixpoint, enumerated) << "class " << c;
  }
  // Also on single-compound-class targets.
  for (int ci = 0; ci < static_cast<int>(expansion.classes().size()); ++ci) {
    bool fixpoint = checker.IsTargetSatisfiable({ci}).value();
    bool enumerated = IsTargetSatisfiableByEnumeration(
                          checker.cr_system(), checker.dependencies(), {ci})
                          .value();
    EXPECT_EQ(fixpoint, enumerated) << "compound class " << ci;
  }
}

TEST(SatisfiabilityTest, FixpointAgreesWithEnumerationOnFigure1) {
  Schema schema = Figure1Schema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  for (int c = 0; c < schema.num_classes(); ++c) {
    std::vector<int> target = expansion.ClassIndicesContaining(ClassId(c));
    bool fixpoint = checker.IsTargetSatisfiable(target).value();
    bool enumerated = IsTargetSatisfiableByEnumeration(
                          checker.cr_system(), checker.dependencies(), target)
                          .value();
    EXPECT_EQ(fixpoint, enumerated) << "class " << c;
  }
}

TEST(SatisfiabilityTest, IsaFreeUnsatSchemaDetected) {
  Schema schema = IsaFreeUnsatSchema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  EXPECT_FALSE(
      checker.IsClassSatisfiable(schema.FindClass("A").value()).value());
  EXPECT_FALSE(
      checker.IsClassSatisfiable(schema.FindClass("B").value()).value());
}

TEST(SatisfiabilityTest, UnconstrainedSchemaFullySatisfiable) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "B"}});
  Schema schema = builder.Build().value();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  EXPECT_TRUE(satisfiable[0]);
  EXPECT_TRUE(satisfiable[1]);
}

TEST(SatisfiabilityTest, DisjointnessCanForceUnsatisfiability) {
  // B <= A, B <= C with A,C disjoint: B has no consistent compound class.
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddClass("C");
  builder.AddIsa("B", "A");
  builder.AddIsa("B", "C");
  builder.AddDisjointness({"A", "C"});
  builder.AddRelationship("R", {{"U", "A"}, {"V", "C"}});
  Schema schema = builder.Build().value();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  EXPECT_TRUE(satisfiable[schema.FindClass("A").value().value]);
  EXPECT_FALSE(satisfiable[schema.FindClass("B").value().value]);
  EXPECT_TRUE(satisfiable[schema.FindClass("C").value().value]);
}

TEST(SatisfiabilityTest, CoveringPropagatesCardinalityPressure) {
  // Person covered by {Adult}; Adult's participation is capped at 1 while
  // Person's is required >= 2: every Person is an Adult, so Person is
  // unsatisfiable. Without the covering it would be satisfiable.
  SchemaBuilder builder;
  builder.AddClass("Person");
  builder.AddClass("Adult");
  builder.AddIsa("Adult", "Person");
  builder.AddRelationship("R", {{"U", "Person"}, {"V", "Person"}});
  builder.SetCardinality("Person", "R", "U", {2, std::nullopt});
  builder.SetCardinality("Adult", "R", "U", {0, 1});
  builder.AddCovering("Person", {"Adult"});
  Schema schema = builder.Build().value();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  EXPECT_FALSE(
      checker.IsClassSatisfiable(schema.FindClass("Person").value()).value());

  // Drop the covering: a plain Person can take 2 participations.
  SchemaBuilder relaxed;
  relaxed.AddClass("Person");
  relaxed.AddClass("Adult");
  relaxed.AddIsa("Adult", "Person");
  relaxed.AddRelationship("R", {{"U", "Person"}, {"V", "Person"}});
  relaxed.SetCardinality("Person", "R", "U", {2, std::nullopt});
  relaxed.SetCardinality("Adult", "R", "U", {0, 1});
  Schema relaxed_schema = relaxed.Build().value();
  Expansion relaxed_expansion = Expansion::Build(relaxed_schema).value();
  SatisfiabilityChecker relaxed_checker(relaxed_expansion);
  EXPECT_TRUE(relaxed_checker
                  .IsClassSatisfiable(relaxed_schema.FindClass("Person")
                                          .value())
                  .value());
}

TEST(SatisfiabilityTest, EnumerationCapRejectsLargeSystems) {
  // 5 unconstrained classes yield 31 consistent compound classes, beyond
  // the reference enumerator's 16-variable cap.
  SchemaBuilder builder;
  for (int i = 0; i < 5; ++i) {
    builder.AddClass("K" + std::to_string(i));
  }
  builder.AddRelationship("R", {{"U", "K0"}, {"V", "K1"}});
  Schema schema = builder.Build().value();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  Result<bool> result = IsTargetSatisfiableByEnumeration(
      checker.cr_system(), checker.dependencies(), {0});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace crsat
