// The graph-saturation witness engine (src/saturation/), exercised as a
// standalone unit: finite-model certification with merge (reuse) and
// spawn, blocking on cyclic demands (sat-with-reuse), classical
// unsatisfiability from label clashes, honest kUnknown degradation under
// guard trips in each phase, thread-count determinism, and unit-level
// mutation checks proving a weakened merge rule or over-eager blocking
// produces artifacts the harness-side validators reject.
//
// This binary deliberately links ONLY crsat_core + crsat_saturation (see
// tests/CMakeLists.txt): a reference to lp/, expansion/, or reasoner/
// leaking into the engine fails right here with an undefined symbol.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/base/failpoint.h"
#include "src/base/resource_guard.h"
#include "src/base/thread_pool.h"
#include "src/cr/model_checker.h"
#include "src/cr/schema_text.h"
#include "src/saturation/graph.h"
#include "src/saturation/saturation.h"

namespace crsat {
namespace {

Schema Parse(const std::string& text) {
  Result<NamedSchema> parsed = ParseSchema(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed->schema;
}

ClassId Cls(const Schema& schema, const std::string& name) {
  return schema.FindClass(name).value();
}

// The paper's Figure 1 collapsed onto one class: 2|C| <= |R| <= |C|
// forces C finitely empty, while the infinite binary tree is classically
// fine — the engine's defining test case.
const char* kBinaryTree =
    "schema BinaryTree {\n"
    "  class C;\n"
    "  relationship R(V1: C, V2: C);\n"
    "  card C in R.V1 = (2, *);\n"
    "  card C in R.V2 = (0, 1);\n"
    "}\n";

// --- Finite certification: merge and spawn --------------------------------

TEST(SaturationTest, SelfLoopCertifiedByReuse) {
  // (1,1) participation closes into a single self-looping individual:
  // the merge (reuse-first filler choice) at work.
  Schema schema = Parse(
      "schema SelfLoop {\n"
      "  class A;\n"
      "  relationship R(V1: A, V2: A);\n"
      "  card A in R.V1 = (1, 1);\n"
      "}\n");
  SaturationReport report = SaturationEngine::Decide(schema);
  ASSERT_EQ(report.classes.size(), 1u);
  const SaturationClassResult& result = report.classes[0];
  EXPECT_EQ(result.verdict, SaturationVerdict::kFiniteModel);
  ASSERT_TRUE(result.model.has_value());
  EXPECT_TRUE(ModelChecker::IsModel(schema, *result.model));
  EXPECT_EQ(result.model->domain_size(), 1);
  EXPECT_GE(report.individuals_reused, 1u);
}

TEST(SaturationTest, MinDeficitsSpawnFreshFillers) {
  // Each A owes two distinct R-tuples; duplicate-tuple rejection forces
  // the second filler to be a fresh spawn, never a re-merge.
  Schema schema = Parse(
      "schema Spawn {\n"
      "  class A, B;\n"
      "  relationship R(V1: A, V2: B);\n"
      "  card A in R.V1 = (2, 2);\n"
      "}\n");
  SaturationReport report = SaturationEngine::Decide(schema);
  const SaturationClassResult& a = report.classes[Cls(schema, "A").value];
  EXPECT_EQ(a.verdict, SaturationVerdict::kFiniteModel);
  ASSERT_TRUE(a.model.has_value());
  EXPECT_TRUE(ModelChecker::IsModel(schema, *a.model));
  EXPECT_EQ(a.model->domain_size(), 3);  // One A, two spawned Bs.
  EXPECT_GE(report.individuals_spawned, 2u);
}

// --- Blocking: sat-with-reuse on finitely-unsat schemas -------------------

TEST(SaturationTest, FinitelyUnsatYieldsValidBlockedGraph) {
  Schema schema = Parse(kBinaryTree);
  SaturationReport report = SaturationEngine::Decide(schema);
  const SaturationClassResult& c = report.classes[0];
  EXPECT_EQ(c.verdict, SaturationVerdict::kSatWithReuse);
  EXPECT_FALSE(c.model.has_value());
  EXPECT_FALSE(c.graph.empty());
  EXPECT_TRUE(
      ValidateSaturationGraph(schema, c.graph, c.cls).empty());
  EXPECT_GE(report.blocked_edges, 1u);
}

TEST(SaturationTest, UnraveledPrefixViolatesOnlyCardinality) {
  // Unraveling a valid blocked graph into a finite prefix must satisfy
  // everything except the frontier's min-cardinality debts — that is the
  // unraveling theorem the sat-with-reuse verdict rests on.
  Schema schema = Parse(kBinaryTree);
  SaturationClassResult result =
      SaturationEngine::DecideClass(schema, Cls(schema, "C"));
  ASSERT_EQ(result.verdict, SaturationVerdict::kSatWithReuse);
  Result<Interpretation> prefix =
      UnravelPrefix(schema, result.graph, /*max_individuals=*/32);
  ASSERT_TRUE(prefix.ok()) << prefix.status();
  std::vector<ModelViolation> violations =
      ModelChecker::CheckModel(schema, *prefix);
  ASSERT_FALSE(violations.empty());  // A finite prefix cannot be a model.
  for (const ModelViolation& violation : violations) {
    EXPECT_EQ(violation.kind, ModelViolation::Kind::kCardinality)
        << violation.message;
  }
}

// --- Classical unsatisfiability -------------------------------------------

TEST(SaturationTest, RefinementClashIsUnsat) {
  // B's closure {A, B} folds the bounds to min 2 > max 1 on R.V1: no
  // model at all, finite or infinite. A itself stays satisfiable.
  Schema schema = Parse(
      "schema Refine {\n"
      "  class A, B, C;\n"
      "  isa B < A;\n"
      "  relationship R(V1: A, V2: C);\n"
      "  card A in R.V1 = (2, *);\n"
      "  card B in R.V1 = (0, 1);\n"
      "}\n");
  EXPECT_EQ(SaturationEngine::DecideClass(schema, Cls(schema, "B")).verdict,
            SaturationVerdict::kUnsat);
  EXPECT_EQ(SaturationEngine::DecideClass(schema, Cls(schema, "A")).verdict,
            SaturationVerdict::kFiniteModel);
}

TEST(SaturationTest, DisjointSuperclassesAreUnsat) {
  Schema schema = Parse(
      "schema Disjoint {\n"
      "  class A, B, C;\n"
      "  isa C < A;\n"
      "  isa C < B;\n"
      "  disjoint A, B;\n"
      "}\n");
  EXPECT_EQ(SaturationEngine::DecideClass(schema, Cls(schema, "C")).verdict,
            SaturationVerdict::kUnsat);
}

TEST(SaturationTest, CoveringExhaustionIsUnsat) {
  // Every covering completion of {P} adds X, and {P, X} clashes; with
  // all branches dead the class is classically unsatisfiable.
  Schema schema = Parse(
      "schema Cover {\n"
      "  class P, X;\n"
      "  isa X < P;\n"
      "  cover P by X;\n"
      "  relationship R(V1: P, V2: P);\n"
      "  card P in R.V1 = (2, *);\n"
      "  card X in R.V1 = (0, 1);\n"
      "}\n");
  EXPECT_EQ(SaturationEngine::DecideClass(schema, Cls(schema, "P")).verdict,
            SaturationVerdict::kUnsat);
}

// --- Guard degradation: honest unknowns, never guesses --------------------

TEST(SaturationTest, PhaseATripDegradesToUnknown) {
  Schema schema = Parse(kBinaryTree);
  ResourceLimits limits;
  limits.timeout = std::chrono::milliseconds(0);
  ResourceGuard guard(limits);
  SaturationOptions options;
  options.guard = &guard;
  SaturationClassResult result =
      SaturationEngine::DecideClass(schema, Cls(schema, "C"), options);
  EXPECT_EQ(result.verdict, SaturationVerdict::kUnknown);
  EXPECT_FALSE(result.unknown_reason.empty());
  EXPECT_FALSE(result.model.has_value());
  EXPECT_TRUE(guard.tripped());
  EXPECT_EQ(guard.report().site, "saturation/phase_a");
}

TEST(SaturationTest, PhaseBTripDegradesToSatWithReuse) {
  // Land an injected guard trip inside phase B by scanning the nth-check
  // schedule: the engine is deterministic, so some K hits the
  // materialization loop's poll. Phase A already built a valid graph, so
  // the honest degraded claim is sat-with-reuse, not unknown.
  Schema schema = Parse(
      "schema SelfLoop {\n"
      "  class A;\n"
      "  relationship R(V1: A, V2: A);\n"
      "  card A in R.V1 = (1, 1);\n"
      "}\n");
  bool landed_in_phase_b = false;
  for (int k = 1; k <= 40 && !landed_in_phase_b; ++k) {
    FailpointSpec spec;
    spec.id = "guard/trip";
    spec.mode = FailpointMode::kNth;
    spec.n = static_cast<std::uint64_t>(k);
    ScopedFailpoint armed(spec);
    ASSERT_TRUE(armed.status().ok());
    ResourceGuard guard;  // Unlimited: only the injection can trip it.
    SaturationOptions options;
    options.guard = &guard;
    SaturationClassResult result =
        SaturationEngine::DecideClass(schema, Cls(schema, "A"), options);
    if (!guard.tripped() || guard.report().site != "saturation/phase_b") {
      continue;
    }
    landed_in_phase_b = true;
    EXPECT_EQ(result.verdict, SaturationVerdict::kSatWithReuse);
    EXPECT_FALSE(result.model.has_value());
    EXPECT_TRUE(
        ValidateSaturationGraph(schema, result.graph, result.cls).empty());
  }
  EXPECT_TRUE(landed_in_phase_b)
      << "no nth-check schedule up to 40 reached the phase B poll";
}

// --- Determinism across thread counts -------------------------------------

TEST(SaturationTest, VerdictsGraphsAndModelsAreThreadCountInvariant) {
  Schema schema = Parse(
      "schema Mixed {\n"
      "  class A, B, C, D;\n"
      "  isa B < A;\n"
      "  isa D < C;\n"
      "  relationship R(V1: A, V2: C);\n"
      "  relationship S(W1: C, W2: C);\n"
      "  card A in R.V1 = (2, *);\n"
      "  card B in R.V1 = (0, 1);\n"
      "  card C in S.W1 = (2, *);\n"
      "  card C in S.W2 = (0, 1);\n"
      "  card D in R.V2 = (0, *);\n"
      "}\n");
  auto digest = [&](const SaturationReport& report) {
    std::string out = report.Summary(schema);
    for (const SaturationClassResult& result : report.classes) {
      out += SaturationVerdictToString(result.verdict);
      out += result.graph.ToText(schema);
      if (result.model.has_value()) {
        out += result.model->ToString();
      }
      out += result.unknown_reason;
    }
    return out;
  };
  SetGlobalThreadCount(1);
  const std::string reference = digest(SaturationEngine::Decide(schema));
  for (int threads : {2, 8}) {
    SetGlobalThreadCount(threads);
    EXPECT_EQ(digest(SaturationEngine::Decide(schema)), reference)
        << "thread count " << threads << " changed the outcome";
  }
  SetGlobalThreadCount(0);
}

// --- Mutation checks: the validators catch a broken engine ----------------

TEST(SaturationMutationTest, WeakenedMergeRuleProducesRejectedModel) {
  // With the max-cardinality check dropped from the merge rule the
  // engine "certifies" a finite model of the finitely-unsat schema —
  // and ModelChecker rejects it, which is exactly what the conformance
  // harness surfaces as saturation-missed-violation.
  Schema schema = Parse(kBinaryTree);
  SaturationOptions mutated;
  mutated.weaken_merge_rule = true;
  SaturationClassResult result =
      SaturationEngine::DecideClass(schema, Cls(schema, "C"), mutated);
  ASSERT_EQ(result.verdict, SaturationVerdict::kFiniteModel);
  ASSERT_TRUE(result.model.has_value());
  EXPECT_FALSE(ModelChecker::IsModel(schema, *result.model));
  std::vector<ModelViolation> violations =
      ModelChecker::CheckModel(schema, *result.model);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, ModelViolation::Kind::kCardinality);
}

TEST(SaturationMutationTest, OverEagerBlockingProducesInvalidGraph) {
  // A is classically unsatisfiable (every filler B owes three S-tuples
  // but may absorb one). Over-eager blocking short-circuits the nested
  // clash and claims sat-with-reuse — but the graph it exhibits fails
  // the local validator, so the claim carries its own refutation.
  Schema schema = Parse(
      "schema Nested {\n"
      "  class A, B, C;\n"
      "  isa B < C;\n"
      "  relationship R(V1: A, V2: B);\n"
      "  card A in R.V1 = (1, *);\n"
      "  relationship S(W1: C, W2: A);\n"
      "  card C in S.W1 = (3, *);\n"
      "  card B in S.W1 = (0, 1);\n"
      "}\n");
  const ClassId a = Cls(schema, "A");
  EXPECT_EQ(SaturationEngine::DecideClass(schema, a).verdict,
            SaturationVerdict::kUnsat);
  SaturationOptions mutated;
  mutated.overeager_blocking = true;
  SaturationClassResult result =
      SaturationEngine::DecideClass(schema, a, mutated);
  EXPECT_NE(result.verdict, SaturationVerdict::kUnsat);
  EXPECT_FALSE(result.graph.empty());
  EXPECT_FALSE(ValidateSaturationGraph(schema, result.graph, a).empty());
}

TEST(SaturationTest, VerdictNamesAreStable) {
  EXPECT_STREQ(SaturationVerdictToString(SaturationVerdict::kFiniteModel),
               "finite-model");
  EXPECT_STREQ(SaturationVerdictToString(SaturationVerdict::kSatWithReuse),
               "sat-with-reuse");
  EXPECT_STREQ(SaturationVerdictToString(SaturationVerdict::kUnsat),
               "unsat");
  EXPECT_STREQ(SaturationVerdictToString(SaturationVerdict::kUnknown),
               "unknown");
}

}  // namespace
}  // namespace crsat
