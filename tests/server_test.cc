// Tests for the crsatd service layer (src/server/): wire protocol
// framing, the fair-queueing request scheduler, and end-to-end
// client/daemon behavior on a loopback socket — including the contract
// the whole subsystem exists for: responses byte-identical to the
// one-shot CLI's stdout (DESIGN.md §15).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/base/mutex.h"
#include "src/base/thread_pool.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/scheduler.h"
#include "src/server/server.h"

namespace crsat {
namespace server {
namespace {

std::string Schema(const std::string& name) {
  return std::string(CRSAT_SOURCE_DIR) + "/examples/schemas/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr) << path;
  std::string text;
  char chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    text.append(chunk, got);
  }
  std::fclose(file);
  return text;
}

// Runs the one-shot CLI, returning its stdout and exit code (stderr is
// dropped: the parity contract covers stdout bytes and the exit family).
struct CliRun {
  int exit_code = -1;
  std::string out;
};

CliRun RunCli(const std::string& args) {
  const std::string command =
      std::string(SERVER_TEST_CLI) + " " + args + " 2>/dev/null";
  CliRun run;
  std::FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  char chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), pipe)) > 0) {
    run.out.append(chunk, got);
  }
  const int raw = pclose(pipe);
  run.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  return run;
}

// ---------------------------------------------------------------------------
// Wire protocol: encode/decode round trips and the three ways a byte
// stream can go wrong (truncation, garbage, lying length prefixes).

TEST(ProtocolTest, RequestRoundTripPreservesEveryField) {
  Frame request = MakeRequest(RequestType::kCheck, "payload bytes");
  request.deadline_ms = 1500;
  request.max_compounds = 77;
  request.max_memory_bytes = 1u << 20;

  const std::string wire = EncodeFrame(request);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + request.payload.size());

  Frame decoded;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(wire, &decoded, &consumed, &error), DecodeResult::kFrame)
      << error;
  EXPECT_EQ(consumed, wire.size());
  EXPECT_FALSE(decoded.is_response());
  EXPECT_EQ(decoded.request_type(), RequestType::kCheck);
  EXPECT_EQ(decoded.deadline_ms, 1500u);
  EXPECT_EQ(decoded.max_compounds, 77u);
  EXPECT_EQ(decoded.max_memory_bytes, 1u << 20);
  EXPECT_EQ(decoded.payload, "payload bytes");
}

TEST(ProtocolTest, ResponseRoundTripCarriesStatus) {
  const std::string wire = EncodeFrame(
      MakeResponse(RequestType::kLint, ResponseStatus::kFindings, "report"));
  Frame decoded;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(wire, &decoded, &consumed, &error), DecodeResult::kFrame);
  EXPECT_TRUE(decoded.is_response());
  EXPECT_EQ(decoded.request_type(), RequestType::kLint);
  EXPECT_EQ(decoded.response_status(), ResponseStatus::kFindings);
  EXPECT_EQ(decoded.payload, "report");
}

TEST(ProtocolTest, EveryTruncationOfAValidFrameNeedsMore) {
  // Short reads are normal operation: every proper prefix of a valid
  // frame must decode to kNeedMore, never kError (the server/short-read
  // failpoint delivers the stream one byte at a time through exactly
  // this path).
  const std::string wire =
      EncodeFrame(MakeRequest(RequestType::kParse, "name\nclass A\n"));
  for (std::size_t len = 0; len < wire.size(); ++len) {
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(DecodeFrame(std::string_view(wire).substr(0, len), &frame,
                          &consumed, &error),
              DecodeResult::kNeedMore)
        << "prefix of length " << len << ": " << error;
  }
}

TEST(ProtocolTest, GarbageMagicIsAnErrorImmediately) {
  // The very first wrong byte condemns the stream — no waiting for 32
  // bytes of garbage to accumulate.
  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame("GET / HTTP/1.1\r\n", &frame, &consumed, &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
  error.clear();
  EXPECT_EQ(DecodeFrame("X", &frame, &consumed, &error), DecodeResult::kError);
}

TEST(ProtocolTest, OversizedPayloadDeclarationIsAnError) {
  std::string wire = EncodeFrame(MakeRequest(RequestType::kCheck, ""));
  // Rewrite the length prefix (offset 28, LE u32) to claim > 16 MiB.
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i) {
    wire[28 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(wire, &frame, &consumed, &error), DecodeResult::kError);
  EXPECT_NE(error.find("payload"), std::string::npos) << error;
}

TEST(ProtocolTest, WrongVersionAndDirtyReservedByteAreErrors) {
  std::string wire = EncodeFrame(MakeRequest(RequestType::kCheck, ""));
  std::string bad_version = wire;
  bad_version[4] = static_cast<char>(kProtocolVersion + 1);
  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(bad_version, &frame, &consumed, &error),
            DecodeResult::kError);

  std::string dirty_reserved = wire;
  dirty_reserved[7] = 1;
  EXPECT_EQ(DecodeFrame(dirty_reserved, &frame, &consumed, &error),
            DecodeResult::kError);
}

TEST(ProtocolTest, BackToBackFramesDecodeOneAtATime) {
  const std::string first = EncodeFrame(MakeRequest(RequestType::kStats, ""));
  const std::string second =
      EncodeFrame(MakeRequest(RequestType::kLint, "json"));
  std::string buffer = first + second;

  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(buffer, &frame, &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_EQ(frame.request_type(), RequestType::kStats);
  EXPECT_EQ(consumed, first.size());
  buffer.erase(0, consumed);
  ASSERT_EQ(DecodeFrame(buffer, &frame, &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_EQ(frame.request_type(), RequestType::kLint);
  EXPECT_EQ(frame.payload, "json");
}

TEST(ProtocolTest, ClampBudgetTakesTheTighterOfRequestAndCap) {
  ResourceLimits caps;
  caps.max_compounds = 1000;
  caps.timeout = std::chrono::milliseconds(2000);

  Frame request = MakeRequest(RequestType::kCheck, "");
  request.max_compounds = 50;       // Tighter than the cap: kept.
  request.deadline_ms = 10000;      // Looser than the cap: clamped.
  request.max_memory_bytes = 4096;  // No cap on this axis: passes through.

  const ResourceLimits limits = ClampBudget(request, caps);
  ASSERT_TRUE(limits.max_compounds.has_value());
  EXPECT_EQ(*limits.max_compounds, 50u);
  ASSERT_TRUE(limits.timeout.has_value());
  EXPECT_EQ(limits.timeout->count(), 2000);
  ASSERT_TRUE(limits.max_memory_bytes.has_value());
  EXPECT_EQ(*limits.max_memory_bytes, 4096u);

  // No request budget at all: the caps apply as-is.
  const ResourceLimits cap_only =
      ClampBudget(MakeRequest(RequestType::kCheck, ""), caps);
  ASSERT_TRUE(cap_only.max_compounds.has_value());
  EXPECT_EQ(*cap_only.max_compounds, 1000u);
  EXPECT_FALSE(cap_only.max_memory_bytes.has_value());
}

// ---------------------------------------------------------------------------
// Request scheduler: admission control, per-lane FIFO, deficit round
// robin, drain.

TEST(SchedulerTest, FifoWithinOneLane) {
  ThreadPool pool(2);
  RequestScheduler scheduler(&pool, {.max_concurrency = 1});
  scheduler.OpenLane(1);

  Mutex mutex;
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(scheduler.Submit(1, 0,
                               [&, i] {
                                 MutexLock lock(mutex);
                                 order.push_back(i);
                               }),
              ResponseStatus::kOk);
  }
  scheduler.AwaitIdle();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SchedulerTest, FairQueueingBoundsTheLightTenant) {
  // The starvation scenario the DRR exists for: a pathological tenant
  // floods its lane with maximum-cost requests while a light tenant
  // sends one-line probes. With single-file dispatch the light tenant's
  // requests must all complete near the front — its worst-case position
  // is bounded by active lanes x longest request, not by the heavy
  // backlog length.
  ThreadPool pool(2);
  RequestScheduler scheduler(&pool, {.max_concurrency = 1});
  scheduler.OpenLane(1);  // Heavy tenant.
  scheduler.OpenLane(2);  // Light tenant.

  // Hold the single dispatch slot so the queues build up before the DRR
  // pass starts picking.
  Mutex gate_mutex;
  CondVar gate_cv;
  bool gate_open = false;
  scheduler.OpenLane(99);
  ASSERT_EQ(scheduler.Submit(99, 0,
                             [&] {
                               MutexLock lock(gate_mutex);
                               while (!gate_open) {
                                 gate_cv.Wait(lock);
                               }
                             }),
            ResponseStatus::kOk);

  Mutex mutex;
  std::vector<std::string> completions;
  constexpr int kHeavy = 30;
  constexpr int kLight = 6;
  for (int i = 0; i < kHeavy; ++i) {
    // 200 KiB payloads: DRR cost 64 each (the clamp ceiling + 1).
    ASSERT_EQ(scheduler.Submit(1, 200 * 1024,
                               [&] {
                                 MutexLock lock(mutex);
                                 completions.push_back("heavy");
                               }),
              ResponseStatus::kOk);
  }
  for (int i = 0; i < kLight; ++i) {
    ASSERT_EQ(scheduler.Submit(2, 16,
                               [&] {
                                 MutexLock lock(mutex);
                                 completions.push_back("light");
                               }),
              ResponseStatus::kOk);
  }
  {
    MutexLock lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.NotifyAll();
  scheduler.AwaitIdle();

  ASSERT_EQ(completions.size(), static_cast<std::size_t>(kHeavy + kLight));
  // Tail latency bound, expressed in completion positions (deterministic,
  // unlike wall-clock p99): even the light tenant's *last* request must
  // finish before the heavy lane's backlog is half done. Under DRR the
  // light lane (cost 1 a pop) dispatches many times per heavy dispatch
  // (cost 64), so all 6 light requests land within the first handful of
  // completions; strict FIFO across lanes would put them at positions
  // 31..36.
  int last_light_position = -1;
  for (int i = 0; i < kHeavy + kLight; ++i) {
    if (completions[i] == "light") {
      last_light_position = i;
    }
  }
  ASSERT_GE(last_light_position, 0);
  EXPECT_LT(last_light_position, kHeavy / 2)
      << "light tenant starved behind the heavy backlog";
}

TEST(SchedulerTest, AdmissionControlShedsBeyondTheBounds) {
  ThreadPool pool(2);
  RequestScheduler::Options options;
  options.max_queued = 4;
  options.max_queued_per_lane = 4;
  options.max_concurrency = 1;
  RequestScheduler scheduler(&pool, options);
  scheduler.OpenLane(1);

  Mutex gate_mutex;
  CondVar gate_cv;
  bool gate_open = false;
  ASSERT_EQ(scheduler.Submit(1, 0,
                             [&] {
                               MutexLock lock(gate_mutex);
                               while (!gate_open) {
                                 gate_cv.Wait(lock);
                               }
                             }),
            ResponseStatus::kOk);

  // Fill the queue to its bound, then watch the shed.
  int admitted = 0;
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    const ResponseStatus status = scheduler.Submit(1, 0, [] {});
    if (status == ResponseStatus::kOk) {
      ++admitted;
    } else {
      EXPECT_EQ(status, ResponseStatus::kOverloaded);
      ++shed;
    }
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(shed, 6);
  const RequestScheduler::Stats mid = scheduler.stats();
  EXPECT_EQ(mid.shed, 6u);

  {
    MutexLock lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.NotifyAll();
  scheduler.AwaitIdle();
  const RequestScheduler::Stats done = scheduler.stats();
  EXPECT_EQ(done.completed, 5u);  // The gate task + 4 admitted.
  EXPECT_EQ(done.queued_now, 0u);
  EXPECT_EQ(done.running_now, 0u);
}

TEST(SchedulerTest, DrainRefusesNewWorkAndFinishesAdmitted) {
  ThreadPool pool(2);
  RequestScheduler scheduler(&pool, {.max_concurrency = 1});
  scheduler.OpenLane(1);

  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(scheduler.Submit(1, 0, [&] { ++ran; }), ResponseStatus::kOk);
  }
  scheduler.BeginDrain();
  EXPECT_TRUE(scheduler.draining());
  EXPECT_EQ(scheduler.Submit(1, 0, [&] { ++ran; }),
            ResponseStatus::kShuttingDown);
  scheduler.AwaitIdle();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(scheduler.stats().refused_draining, 1u);
}

TEST(SchedulerTest, SubmitToClosedLaneIsRefused) {
  ThreadPool pool(2);
  RequestScheduler scheduler(&pool, {});
  scheduler.OpenLane(1);
  scheduler.CloseLane(1);
  EXPECT_EQ(scheduler.Submit(1, 0, [] {}), ResponseStatus::kOverloaded);
}

// ---------------------------------------------------------------------------
// End-to-end: daemon + client over loopback TCP.

// Every test daemon runs at the same fixed parallelism so the global
// pool is constructed once (SetGlobalThreadCount contract: swaps must
// not race in-flight work).
ServerOptions TestOptions() {
  ServerOptions options;
  options.port = 0;  // Kernel-assigned ephemeral port.
  options.threads = 4;
  return options;
}

TEST(ServerTest, SessionHoldsTheSchemaAcrossManyRequests) {
  Server daemon(TestOptions());
  ASSERT_TRUE(daemon.Start().ok());

  Client client;
  ASSERT_TRUE(client.ConnectTcp(daemon.port()).ok());
  const std::string path = Schema("university.cr");
  auto parsed = client.Parse(path, ReadFileOrDie(path));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->status, ResponseStatus::kOk);

  // One parse, many queries: the session carries the schema, so check /
  // lint / implications alternate freely and deterministically.
  std::string first_check;
  std::string first_lint;
  for (int i = 0; i < 10; ++i) {
    auto check = client.Call(RequestType::kCheck, "");
    ASSERT_TRUE(check.ok());
    auto lint = client.Call(RequestType::kLint, "");
    ASSERT_TRUE(lint.ok());
    auto implies =
        client.Call(RequestType::kImplications, "isa PhDStudent Person");
    ASSERT_TRUE(implies.ok());
    if (i == 0) {
      first_check = check->payload;
      first_lint = lint->payload;
      EXPECT_FALSE(first_check.empty());
    } else {
      EXPECT_EQ(check->payload, first_check) << "iteration " << i;
      EXPECT_EQ(lint->payload, first_lint) << "iteration " << i;
    }
  }

  auto stats = client.Call(RequestType::kStats, "");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, ResponseStatus::kOk);
  EXPECT_NE(stats->payload.find("\"completed\""), std::string::npos);

  daemon.BeginDrain();
  daemon.Wait();
}

TEST(ServerTest, ConcurrentClientsMatchTheOneShotCli) {
  // The subsystem's reason to exist: N concurrent sessions against one
  // daemon produce byte-for-byte the stdout of the one-shot CLI, for
  // every request type, at every concurrency level.
  const std::vector<std::string> schemas = {"university.cr", "figure1.cr",
                                            "meeting.cr"};
  struct Expected {
    CliRun check;
    CliRun lint;
    CliRun witness;
  };
  std::map<std::string, Expected> expected;
  for (const std::string& name : schemas) {
    Expected& e = expected[name];
    e.check = RunCli("check " + Schema(name));
    e.lint = RunCli("lint " + Schema(name));
    e.witness = RunCli("check " + Schema(name) + " --witness=text");
  }

  Server daemon(TestOptions());
  ASSERT_TRUE(daemon.Start().ok());

  for (int threads : {1, 2, 8}) {
    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const std::string& name = schemas[t % schemas.size()];
        const Expected& e = expected.at(name);
        Client client;
        if (!client.ConnectTcp(daemon.port()).ok()) {
          ++mismatches;
          return;
        }
        const std::string path = Schema(name);
        auto parsed = client.Parse(path, ReadFileOrDie(path));
        if (!parsed.ok() || parsed->status != ResponseStatus::kOk) {
          ++mismatches;
          return;
        }
        for (int round = 0; round < 3; ++round) {
          auto check = client.Call(RequestType::kCheck, "");
          auto lint = client.Call(RequestType::kLint, "");
          auto witness = client.Call(RequestType::kWitness, "text");
          if (!check.ok() || check->payload != e.check.out ||
              static_cast<int>(check->status) != e.check.exit_code) {
            ++mismatches;
          }
          if (!lint.ok() || lint->payload != e.lint.out) {
            ++mismatches;
          }
          if (!witness.ok() || witness->payload != e.witness.out ||
              static_cast<int>(witness->status) != e.witness.exit_code) {
            ++mismatches;
          }
        }
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
    EXPECT_EQ(mismatches.load(), 0) << "at concurrency " << threads;
  }

  daemon.BeginDrain();
  daemon.Wait();
}

TEST(ServerTest, LintParityIncludesSchemasTheStrictParserRejects) {
  // lint_demo.cr only parses leniently; the one-shot CLI still lints it
  // (exit 1, diagnostics on stdout). The session must do the same even
  // though its `parse` reply reported the strict-parse findings.
  const CliRun cli = RunCli("lint " + Schema("lint_demo.cr"));
  ASSERT_EQ(cli.exit_code, 1);

  Server daemon(TestOptions());
  ASSERT_TRUE(daemon.Start().ok());
  Client client;
  ASSERT_TRUE(client.ConnectTcp(daemon.port()).ok());
  const std::string path = Schema("lint_demo.cr");
  auto parsed = client.Parse(path, ReadFileOrDie(path));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, ResponseStatus::kFindings);

  auto lint = client.Call(RequestType::kLint, "");
  ASSERT_TRUE(lint.ok());
  EXPECT_EQ(lint->status, ResponseStatus::kFindings);
  EXPECT_EQ(lint->payload, cli.out);

  daemon.BeginDrain();
  daemon.Wait();
}

TEST(ServerTest, RequestBudgetTripsToResourceStatus) {
  Server daemon(TestOptions());
  ASSERT_TRUE(daemon.Start().ok());
  Client client;
  ASSERT_TRUE(client.ConnectTcp(daemon.port()).ok());
  const std::string path = Schema("university.cr");
  auto parsed = client.Parse(path, ReadFileOrDie(path));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->status, ResponseStatus::kOk);

  RequestBudget budget;
  budget.max_compounds = 1;
  auto reply = client.Call(RequestType::kCheck, "", budget);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, ResponseStatus::kResource);
  EXPECT_NE(reply->payload.find("compound budget"), std::string::npos)
      << reply->payload;

  // The session survives the trip: the same request without the budget
  // succeeds.
  auto retry = client.Call(RequestType::kCheck, "");
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->status, ResponseStatus::kOk);

  daemon.BeginDrain();
  daemon.Wait();
}

TEST(ServerTest, QueryBeforeParseIsABadRequest) {
  Server daemon(TestOptions());
  ASSERT_TRUE(daemon.Start().ok());
  Client client;
  ASSERT_TRUE(client.ConnectTcp(daemon.port()).ok());
  auto reply = client.Call(RequestType::kCheck, "");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, ResponseStatus::kBadRequest);
  EXPECT_NE(reply->payload.find("parse"), std::string::npos);
  daemon.BeginDrain();
  daemon.Wait();
}

TEST(ServerTest, GarbageBytesGetAProtocolErrorAndAClosedConnection) {
  Server daemon(TestOptions());
  ASSERT_TRUE(daemon.Start().ok());

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(daemon.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  const std::string garbage = "this is not a CRSD frame";
  ASSERT_EQ(send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));

  // The server answers with one kProtocolError response, then hangs up —
  // a peer that breaks framing cannot be resynchronized.
  std::string buffer;
  char chunk[512];
  ssize_t got = 0;
  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  DecodeResult result = DecodeResult::kNeedMore;
  while ((got = recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    buffer.append(chunk, static_cast<std::size_t>(got));
    result = DecodeFrame(buffer, &frame, &consumed, &error);
    if (result != DecodeResult::kNeedMore) {
      break;
    }
  }
  ASSERT_EQ(result, DecodeResult::kFrame) << error;
  EXPECT_TRUE(frame.is_response());
  EXPECT_EQ(frame.response_status(), ResponseStatus::kProtocolError);
  EXPECT_EQ(recv(fd, chunk, sizeof(chunk), 0), 0);  // EOF follows.
  close(fd);

  daemon.BeginDrain();
  daemon.Wait();
}

TEST(ServerTest, UnknownRequestTypeIsRefusedWithoutKillingTheSession) {
  Server daemon(TestOptions());
  ASSERT_TRUE(daemon.Start().ok());
  Client client;
  ASSERT_TRUE(client.ConnectTcp(daemon.port()).ok());

  auto bogus = client.Call(static_cast<RequestType>(42), "");
  ASSERT_TRUE(bogus.ok());
  EXPECT_EQ(bogus->status, ResponseStatus::kProtocolError);

  // A well-formed frame with an unknown type is refused but the framing
  // held, so the connection stays usable.
  auto stats = client.Call(RequestType::kStats, "");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, ResponseStatus::kOk);

  daemon.BeginDrain();
  daemon.Wait();
}

TEST(ServerTest, ShutdownRequestDrainsGracefully) {
  Server daemon(TestOptions());
  ASSERT_TRUE(daemon.Start().ok());
  const int port = daemon.port();

  // A session with work done on it...
  Client busy;
  ASSERT_TRUE(busy.ConnectTcp(port).ok());
  const std::string path = Schema("university.cr");
  auto parsed = busy.Parse(path, ReadFileOrDie(path));
  ASSERT_TRUE(parsed.ok());
  auto check = busy.Call(RequestType::kCheck, "");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->status, ResponseStatus::kOk);

  // ...and a second connection that asks the daemon to stop.
  Client admin;
  ASSERT_TRUE(admin.ConnectTcp(port).ok());
  auto reply = admin.Call(RequestType::kShutdown, "");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, ResponseStatus::kOk);
  EXPECT_NE(reply->payload.find("draining"), std::string::npos);

  EXPECT_TRUE(daemon.draining());
  daemon.Wait();  // In-flight work finished, every thread joined.

  // The listener is gone: new connections are refused.
  Client late;
  EXPECT_FALSE(late.ConnectTcp(port).ok());

  const RequestScheduler::Stats stats = daemon.scheduler_stats();
  EXPECT_EQ(stats.queued_now, 0u);
  EXPECT_EQ(stats.running_now, 0u);
  EXPECT_GE(stats.completed, 2u);  // parse + check at minimum.
}

TEST(ServerTest, ClosedConnectionsAreReapedWhileServing) {
  Server daemon(TestOptions());
  ASSERT_TRUE(daemon.Start().ok());

  // Churn through connections the way a long-lived daemon sees them. If
  // dead connections were retained until shutdown, every one of these
  // would pin an fd and a thread object until drain (and a real daemon
  // would walk into EMFILE).
  for (int i = 0; i < 20; ++i) {
    Client client;
    ASSERT_TRUE(client.ConnectTcp(daemon.port()).ok());
    auto stats = client.Call(RequestType::kStats, "");
    ASSERT_TRUE(stats.ok());
    client.Close();
  }

  // The accept thread sweeps between its 200 ms polls: the tracked
  // count must fall to zero with no drain in sight.
  std::size_t live = daemon.live_connections();
  for (int spin = 0; spin < 100 && live != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    live = daemon.live_connections();
  }
  EXPECT_EQ(live, 0u);

  // And the daemon is still fully in service afterwards.
  Client client;
  ASSERT_TRUE(client.ConnectTcp(daemon.port()).ok());
  auto stats = client.Call(RequestType::kStats, "");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, ResponseStatus::kOk);

  daemon.BeginDrain();
  daemon.Wait();
}

TEST(ServerTest, BufferedSecondShutdownCannotDeadlockTheDrain) {
  // Regression: two shutdown frames land in one segment, so the reader
  // calls BeginDrain for the second one while Wait() is already joining
  // connection threads. The join must happen outside the server mutex,
  // or Wait() waits on a reader that waits on the lock.
  Server daemon(TestOptions());
  ASSERT_TRUE(daemon.Start().ok());

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(daemon.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  const std::string wire =
      EncodeFrame(MakeRequest(RequestType::kShutdown, "")) +
      EncodeFrame(MakeRequest(RequestType::kShutdown, ""));
  ASSERT_EQ(send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  daemon.Wait();  // Must return; the mutex-held join hung forever here.
  EXPECT_TRUE(daemon.draining());
  close(fd);
}

TEST(ServerTest, OversizedRequestPayloadIsRefusedNotTruncated) {
  Server daemon(TestOptions());
  ASSERT_TRUE(daemon.Start().ok());
  Client client;
  ASSERT_TRUE(client.ConnectTcp(daemon.port()).ok());

  // One byte past the cap: Call must fail with a status instead of
  // clamping the frame on the wire (a silently cut schema would be
  // parsed and answered as if it were complete).
  std::string oversized(kMaxPayloadBytes + 1, 'x');
  auto reply = client.Call(RequestType::kParse, std::move(oversized));
  EXPECT_FALSE(reply.ok());
  EXPECT_NE(reply.status().ToString().find("cap"), std::string::npos)
      << reply.status().ToString();

  // The refusal happened before any bytes went out: the connection is
  // still clean and serves the next request.
  auto stats = client.Call(RequestType::kStats, "");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, ResponseStatus::kOk);

  daemon.BeginDrain();
  daemon.Wait();
}

TEST(ServerTest, StartRejectsAmbiguousListenerConfig) {
  ServerOptions both = TestOptions();
  both.unix_socket = "/tmp/crsatd_test.sock";
  Server daemon(both);
  EXPECT_FALSE(daemon.Start().ok());

  ServerOptions neither;
  neither.port = -1;
  Server daemon2(neither);
  EXPECT_FALSE(daemon2.Start().ok());
}

TEST(ServerTest, UnixSocketListenerServesRequests) {
  ServerOptions options;
  options.threads = 4;
  options.unix_socket =
      ::testing::TempDir() + "/crsatd_" + std::to_string(getpid()) + ".sock";
  Server daemon(options);
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_EQ(daemon.endpoint(), "unix:" + options.unix_socket);

  Client client;
  ASSERT_TRUE(client.ConnectUnix(options.unix_socket).ok());
  const std::string path = Schema("figure1.cr");
  auto parsed = client.Parse(path, ReadFileOrDie(path));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->status, ResponseStatus::kOk);
  auto check = client.Call(RequestType::kCheck, "");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->payload, RunCli("check " + path).out);

  daemon.BeginDrain();
  daemon.Wait();
}

}  // namespace
}  // namespace server
}  // namespace crsat
