// Determinism of the parallel reasoning core: every verdict, witness, and
// report must be bit-identical at 1, 2, and 8 threads. Runs under the
// thread-sanitizer CI leg, which additionally checks the probe fan-out for
// data races.

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/crsat.h"

#ifndef CRSAT_SOURCE_DIR
#define CRSAT_SOURCE_DIR "."
#endif

namespace crsat {
namespace {

const int kThreadCounts[] = {1, 2, 8};

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream stream(path);
  EXPECT_TRUE(static_cast<bool>(stream)) << "cannot open " << path;
  std::ostringstream text;
  text << stream.rdbuf();
  return text.str();
}

// Everything observable from one full satisfiability analysis, stringified
// so runs can be compared exactly.
std::string AnalysisDigest(const Schema& schema) {
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  AcceptableSupport support = checker.Support().value();
  IntegerSolution integers = checker.AcceptableIntegerSolution().value();
  std::string digest;
  for (bool flag : satisfiable) {
    digest += flag ? '1' : '0';
  }
  digest += "|";
  for (bool flag : support.positive) {
    digest += flag ? '1' : '0';
  }
  digest += "|";
  for (const Rational& value : support.witness) {
    digest += value.ToString() + ",";
  }
  digest += "|";
  for (const BigInt& count : integers.class_counts) {
    digest += count.ToString() + ",";
  }
  for (const BigInt& count : integers.rel_counts) {
    digest += count.ToString() + ",";
  }
  return digest;
}

void ExpectIdenticalAcrossThreadCounts(const Schema& schema,
                                       const std::string& label) {
  std::string reference;
  for (int threads : kThreadCounts) {
    SetGlobalThreadCount(threads);
    std::string digest = AnalysisDigest(schema);
    if (threads == kThreadCounts[0]) {
      reference = digest;
    } else {
      EXPECT_EQ(digest, reference)
          << label << " diverges at " << threads << " threads";
    }
  }
  SetGlobalThreadCount(1);
}

TEST(ConcurrencyTest, ExampleSchemasAnalyzeIdenticallyAtAnyThreadCount) {
  for (const char* file : {"figure1.cr", "meeting.cr", "university.cr"}) {
    std::string text = ReadFileOrDie(std::string(CRSAT_SOURCE_DIR) +
                                     "/examples/schemas/" + file);
    NamedSchema parsed = ParseSchema(text).value();
    ExpectIdenticalAcrossThreadCounts(parsed.schema, file);
  }
}

TEST(ConcurrencyTest, RandomSchemasAnalyzeIdenticallyAtAnyThreadCount) {
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    RandomSchemaParams params;
    params.seed = seed;
    params.num_classes = 5;
    params.num_relationships = 3;
    params.isa_density = 0.3;
    params.num_disjointness_groups = 1;
    Schema schema = GenerateRandomSchema(params).value();
    ExpectIdenticalAcrossThreadCounts(schema,
                                      "random seed " + std::to_string(seed));
  }
}

TEST(ConcurrencyTest, ImplicationReportIdenticalAtAnyThreadCount) {
  std::string text = ReadFileOrDie(std::string(CRSAT_SOURCE_DIR) +
                                   "/examples/schemas/university.cr");
  NamedSchema parsed = ParseSchema(text).value();
  std::string reference;
  for (int threads : kThreadCounts) {
    SetGlobalThreadCount(threads);
    std::vector<ImpliedCardinalityRow> rows =
        BuildImpliedCardinalityReport(parsed.schema).value();
    std::string digest =
        ImpliedCardinalityReportToString(parsed.schema, rows);
    if (threads == kThreadCounts[0]) {
      reference = digest;
    } else {
      EXPECT_EQ(digest, reference) << "report diverges at " << threads
                                   << " threads";
    }
  }
  SetGlobalThreadCount(1);
}

TEST(ConcurrencyTest, CheckAllMatchesSerialQueriesAtAnyThreadCount) {
  std::string text = ReadFileOrDie(std::string(CRSAT_SOURCE_DIR) +
                                   "/examples/schemas/university.cr");
  NamedSchema parsed = ParseSchema(text).value();
  const Schema& schema = parsed.schema;
  ClassId cls = schema.FindClass("Professor").value();
  RelationshipId rel = schema.FindRelationship("Teaches").value();
  RoleId role = schema.FindRole("teacher").value();

  std::vector<ImplicationQuery> queries;
  for (std::uint64_t bound = 0; bound <= 6; ++bound) {
    queries.push_back({ImplicationQuery::Kind::kMin, bound});
    queries.push_back({ImplicationQuery::Kind::kMax, bound});
  }

  // Serial reference: fresh engine, one query at a time.
  SetGlobalThreadCount(1);
  std::vector<bool> serial;
  {
    CardinalityImplicationEngine engine =
        CardinalityImplicationEngine::Create(schema, cls, rel, role).value();
    for (const ImplicationQuery& query : queries) {
      bool verdict = query.kind == ImplicationQuery::Kind::kMin
                         ? engine.ImpliesMin(query.bound).value()
                         : engine.ImpliesMax(query.bound).value();
      serial.push_back(verdict);
    }
  }

  for (int threads : kThreadCounts) {
    SetGlobalThreadCount(threads);
    CardinalityImplicationEngine engine =
        CardinalityImplicationEngine::Create(schema, cls, rel, role).value();
    std::vector<bool> batched = engine.CheckAll(queries).value();
    EXPECT_EQ(batched, serial) << "CheckAll diverges at " << threads
                               << " threads";
    // A second batch on the same engine (now carrying a warm basis) must
    // agree too.
    EXPECT_EQ(engine.CheckAll(queries).value(), serial)
        << "warm CheckAll diverges at " << threads << " threads";
  }
  SetGlobalThreadCount(1);
}

TEST(ConcurrencyTest, TightestBoundsIdenticalAtAnyThreadCount) {
  Schema schema = [] {
    SchemaBuilder builder;
    builder.AddClass("C0");
    builder.AddClass("C1");
    builder.AddClass("C2");
    builder.AddIsa("C0", "C1");
    builder.AddIsa("C1", "C2");
    builder.AddClass("T");
    builder.AddRelationship("R", {{"U", "C2"}, {"V", "T"}});
    builder.SetCardinality("C2", "R", "U", {1, 4});
    builder.SetCardinality("C0", "R", "U", {2, 3});
    builder.SetCardinality("T", "R", "V", {1, 1});
    return builder.Build().value();
  }();
  ClassId bottom = schema.FindClass("C0").value();
  RelationshipId rel = schema.FindRelationship("R").value();
  RoleId role = schema.FindRole("U").value();

  std::uint64_t reference_min = 0;
  std::optional<std::uint64_t> reference_max;
  for (int threads : kThreadCounts) {
    SetGlobalThreadCount(threads);
    std::uint64_t min =
        ImplicationChecker::TightestImpliedMin(schema, bottom, rel, role)
            .value();
    std::optional<std::uint64_t> max =
        ImplicationChecker::TightestImpliedMax(schema, bottom, rel, role)
            .value();
    if (threads == kThreadCounts[0]) {
      reference_min = min;
      reference_max = max;
    } else {
      EXPECT_EQ(min, reference_min) << threads << " threads";
      EXPECT_EQ(max, reference_max) << threads << " threads";
    }
  }
  EXPECT_EQ(reference_min, 2u);
  ASSERT_TRUE(reference_max.has_value());
  EXPECT_EQ(*reference_max, 3u);
  SetGlobalThreadCount(1);
}

}  // namespace
}  // namespace crsat
