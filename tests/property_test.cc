// Randomized cross-validation of the reasoning pipeline: the fixpoint
// engine against the paper's Theorem 3.4 enumeration, the full method
// against the Lenzerini-Nobili baseline on its fragment, and satisfiability
// verdicts against actually materialized (and checked) models.

#include <gtest/gtest.h>

#include "src/baseline/ln_reasoner.h"
#include "src/cr/model_checker.h"
#include "src/generator/random_schema.h"
#include "src/reasoner/implication.h"
#include "src/reasoner/model_builder.h"
#include "src/reasoner/repair.h"
#include "src/reasoner/satisfiability.h"
#include "src/reasoner/unsat_core.h"

namespace crsat {
namespace {

class FixpointVsEnumerationTest : public ::testing::TestWithParam<int> {};

TEST_P(FixpointVsEnumerationTest, VerdictsAgreeOnRandomSchemas) {
  RandomSchemaParams params;
  params.seed = static_cast<std::uint32_t>(GetParam());
  params.num_classes = 3;  // Keeps the 2^|Cc| reference enumeration cheap.
  params.num_relationships = 2;
  params.isa_density = 0.4;
  params.primary_card_probability = 0.8;
  params.refinement_probability = 0.5;
  Schema schema = GenerateRandomSchema(params).value();
  Expansion expansion = Expansion::Build(schema).value();
  if (expansion.classes().size() > 7) {
    GTEST_SKIP() << "expansion too large for the reference enumerator";
  }
  SatisfiabilityChecker checker(expansion);
  for (int c = 0; c < schema.num_classes(); ++c) {
    std::vector<int> target = expansion.ClassIndicesContaining(ClassId(c));
    bool fixpoint = checker.IsTargetSatisfiable(target).value();
    bool enumerated = IsTargetSatisfiableByEnumeration(
                          checker.cr_system(), checker.dependencies(), target)
                          .value();
    EXPECT_EQ(fixpoint, enumerated)
        << "class " << schema.ClassName(ClassId(c)) << ", seed "
        << params.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixpointVsEnumerationTest,
                         ::testing::Range(0, 30));

class SatisfiableMeansModelExistsTest
    : public ::testing::TestWithParam<int> {};

TEST_P(SatisfiableMeansModelExistsTest, WitnessModelsVerify) {
  RandomSchemaParams params;
  params.seed = static_cast<std::uint32_t>(GetParam()) + 1000;
  params.num_classes = 5;
  params.num_relationships = 3;
  params.isa_density = 0.3;
  params.primary_card_probability = 0.7;
  params.refinement_probability = 0.4;
  Schema schema = GenerateRandomSchema(params).value();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();

  // One witness model realizes the full support: every satisfiable class
  // must be populated in it, every unsatisfiable class empty.
  IntegerSolution solution = checker.AcceptableIntegerSolution().value();
  ModelBuildOptions options;
  options.max_model_size = 2000000;
  Result<Interpretation> model =
      ModelBuilder::BuildModel(expansion, solution, options);
  ASSERT_TRUE(model.ok()) << "seed " << params.seed << ": "
                          << model.status().message();
  EXPECT_TRUE(ModelChecker::IsModel(schema, model.value()))
      << "seed " << params.seed;
  for (int c = 0; c < schema.num_classes(); ++c) {
    bool populated =
        !model.value().ClassExtension(ClassId(c)).empty();
    EXPECT_EQ(populated, static_cast<bool>(satisfiable[c]))
        << "class " << schema.ClassName(ClassId(c)) << ", seed "
        << params.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatisfiableMeansModelExistsTest,
                         ::testing::Range(0, 15));

class BaselineAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselineAgreementTest, FullMethodMatchesLenzeriniNobili) {
  RandomSchemaParams params;
  params.seed = static_cast<std::uint32_t>(GetParam()) + 2000;
  // Small on purpose: with no ISA, *every* subset of classes is a
  // consistent compound class, so this is the full method's worst case.
  params.num_classes = 4;
  params.num_relationships = 3;
  params.isa_density = 0.0;  // The baseline's fragment.
  params.refinement_probability = 0.0;
  params.primary_card_probability = 0.9;
  Schema schema = GenerateRandomSchema(params).value();
  LnReasoner baseline = LnReasoner::Create(schema).value();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  EXPECT_EQ(baseline.SatisfiableClasses().value(),
            checker.SatisfiableClasses().value())
      << "seed " << params.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineAgreementTest,
                         ::testing::Range(0, 30));

class TernaryRelationshipTest : public ::testing::TestWithParam<int> {};

TEST_P(TernaryRelationshipTest, PipelineHandlesHigherArity) {
  RandomSchemaParams params;
  params.seed = static_cast<std::uint32_t>(GetParam()) + 3000;
  params.num_classes = 4;
  params.num_relationships = 2;
  params.min_arity = 3;
  params.max_arity = 3;
  params.isa_density = 0.3;
  Schema schema = GenerateRandomSchema(params).value();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  IntegerSolution solution = checker.AcceptableIntegerSolution().value();
  ModelBuildOptions options;
  options.max_model_size = 2000000;
  Result<Interpretation> model =
      ModelBuilder::BuildModel(expansion, solution, options);
  ASSERT_TRUE(model.ok()) << "seed " << params.seed << ": "
                          << model.status().message();
  EXPECT_TRUE(ModelChecker::IsModel(schema, model.value()))
      << "seed " << params.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TernaryRelationshipTest,
                         ::testing::Range(0, 10));

class DisjointnessConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(DisjointnessConsistencyTest,
       PrunedExpansionAgreesWithUnprunedOnVerdicts) {
  // Disjointness can be honored either via expansion pruning (extended
  // consistency) or ignored structurally; pruning must never flip a
  // verdict for schemas whose disjointness groups are what forces the
  // difference... here we compare pruned vs. full-consistency on schemas
  // WITHOUT disjointness, where both must coincide exactly.
  RandomSchemaParams params;
  params.seed = static_cast<std::uint32_t>(GetParam()) + 4000;
  params.num_classes = 4;
  params.num_relationships = 2;
  params.isa_density = 0.4;
  params.refinement_probability = 0.5;
  Schema schema = GenerateRandomSchema(params).value();
  ExpansionOptions extended;
  extended.use_extensions = true;
  ExpansionOptions plain;
  plain.use_extensions = false;
  Expansion a = Expansion::Build(schema, extended).value();
  Expansion b = Expansion::Build(schema, plain).value();
  SatisfiabilityChecker checker_a(a);
  SatisfiabilityChecker checker_b(b);
  EXPECT_EQ(checker_a.SatisfiableClasses().value(),
            checker_b.SatisfiableClasses().value())
      << "seed " << params.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointnessConsistencyTest,
                         ::testing::Range(0, 20));

class ImpliedClosureAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(ImpliedClosureAgreementTest, ClosureMatchesPairwiseQueries) {
  RandomSchemaParams params;
  params.seed = static_cast<std::uint32_t>(GetParam()) + 5000;
  params.num_classes = 4;
  params.num_relationships = 2;
  params.isa_density = 0.4;
  params.primary_card_probability = 0.8;
  params.refinement_probability = 0.4;
  Schema schema = GenerateRandomSchema(params).value();
  std::vector<std::vector<bool>> closure =
      ImplicationChecker::ImpliedIsaClosure(schema).value();
  for (ClassId c : schema.AllClasses()) {
    for (ClassId d : schema.AllClasses()) {
      bool pairwise = ImplicationChecker::ImpliesIsa(schema, c, d).value();
      EXPECT_EQ(static_cast<bool>(closure[c.value][d.value]), pairwise)
          << schema.ClassName(c) << " <= " << schema.ClassName(d)
          << ", seed " << params.seed;
    }
    // The implied closure always contains the declared closure.
    for (ClassId d : schema.AllClasses()) {
      if (schema.IsSubclassOf(c, d)) {
        EXPECT_TRUE(closure[c.value][d.value]) << "seed " << params.seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImpliedClosureAgreementTest,
                         ::testing::Range(0, 15));

class RepairSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(RepairSoundnessTest, CoresMinimalOnRandomUnsatClasses) {
  RandomSchemaParams params;
  params.seed = static_cast<std::uint32_t>(GetParam()) + 6000;
  params.num_classes = 4;
  params.num_relationships = 3;
  params.isa_density = 0.4;
  params.primary_card_probability = 0.9;
  params.refinement_probability = 0.6;
  params.max_min_card = 3;
  params.max_card_slack = 1;
  Schema schema = GenerateRandomSchema(params).value();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  bool found_unsat = false;
  for (int c = 0; c < schema.num_classes() && !found_unsat; ++c) {
    if (satisfiable[c]) {
      continue;
    }
    found_unsat = true;
    ClassId cls(c);
    // The unsat core is nonempty (an unconstrained class is satisfiable,
    // so some constraint must be responsible).
    UnsatCore core = MinimizeUnsatCore(schema, cls).value();
    EXPECT_FALSE(core.constraints.empty()) << "seed " << params.seed;
    // Every repair suggestion names a core constraint, and relaxations
    // carry a replacement bound strictly looser than the declared one.
    std::vector<RepairSuggestion> repairs =
        SuggestRepairs(schema, cls).value();
    EXPECT_FALSE(repairs.empty()) << "seed " << params.seed;
    for (const RepairSuggestion& suggestion : repairs) {
      if (suggestion.action == RepairSuggestion::Action::kRelaxMin) {
        const CardinalityDeclaration& decl =
            schema.cardinality_declarations()[suggestion.constraint.index];
        ASSERT_TRUE(suggestion.relaxed.has_value());
        EXPECT_LT(suggestion.relaxed->min, decl.cardinality.min)
            << "seed " << params.seed;
      }
      if (suggestion.action == RepairSuggestion::Action::kRelaxMax) {
        const CardinalityDeclaration& decl =
            schema.cardinality_declarations()[suggestion.constraint.index];
        ASSERT_TRUE(suggestion.relaxed.has_value());
        ASSERT_TRUE(decl.cardinality.max.has_value());
        EXPECT_TRUE(!suggestion.relaxed->max.has_value() ||
                    *suggestion.relaxed->max > *decl.cardinality.max)
            << "seed " << params.seed;
      }
    }
  }
  if (!found_unsat) {
    GTEST_SKIP() << "seed produced a fully satisfiable schema";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairSoundnessTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace crsat
