#include "src/cr/model_checker.h"

#include <gtest/gtest.h>

#include "src/cr/interpretation.h"
#include "src/cr/schema_text.h"
#include "tests/test_schemas.h"

namespace crsat {
namespace {

using crsat::testing::MeetingSchema;

// Builds the paper's Figure 6 model: John and Mary are speakers and
// discussants; John holds talkJ, Mary holds talkM; John participates in
// talkM and Mary in talkJ.
Interpretation Figure6Model(const Schema& schema) {
  Interpretation interpretation(schema);
  Individual john = interpretation.AddIndividual("John");
  Individual mary = interpretation.AddIndividual("Mary");
  Individual talk_j = interpretation.AddIndividual("talkJ");
  Individual talk_m = interpretation.AddIndividual("talkM");
  ClassId speaker = schema.FindClass("Speaker").value();
  ClassId discussant = schema.FindClass("Discussant").value();
  ClassId talk = schema.FindClass("Talk").value();
  EXPECT_TRUE(interpretation.AddToClass(speaker, john).ok());
  EXPECT_TRUE(interpretation.AddToClass(speaker, mary).ok());
  EXPECT_TRUE(interpretation.AddToClass(discussant, john).ok());
  EXPECT_TRUE(interpretation.AddToClass(discussant, mary).ok());
  EXPECT_TRUE(interpretation.AddToClass(talk, talk_j).ok());
  EXPECT_TRUE(interpretation.AddToClass(talk, talk_m).ok());
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RelationshipId participates =
      schema.FindRelationship("Participates").value();
  EXPECT_TRUE(interpretation.AddTuple(holds, {john, talk_j}).ok());
  EXPECT_TRUE(interpretation.AddTuple(holds, {mary, talk_m}).ok());
  EXPECT_TRUE(interpretation.AddTuple(participates, {john, talk_m}).ok());
  EXPECT_TRUE(interpretation.AddTuple(participates, {mary, talk_j}).ok());
  return interpretation;
}

TEST(ModelCheckerTest, Figure6ModelIsAModel) {
  Schema schema = MeetingSchema();
  Interpretation interpretation = Figure6Model(schema);
  std::vector<std::string> violations =
      ModelChecker::Violations(schema, interpretation);
  EXPECT_TRUE(violations.empty())
      << "unexpected violations, first: " << violations.front();
  EXPECT_TRUE(ModelChecker::IsModel(schema, interpretation));
}

TEST(ModelCheckerTest, EmptyInterpretationIsAlwaysAModel) {
  // Section 3: "every schema is satisfied by the empty interpretation".
  Schema schema = MeetingSchema();
  Interpretation empty(schema);
  EXPECT_TRUE(ModelChecker::IsModel(schema, empty));
}

TEST(ModelCheckerTest, DetectsIsaViolation) {
  Schema schema = MeetingSchema();
  Interpretation interpretation(schema);
  Individual d = interpretation.AddIndividual();
  ClassId discussant = schema.FindClass("Discussant").value();
  // Discussant instance not added to Speaker; also violates the
  // Participates minc, but the ISA violation must be reported.
  ASSERT_TRUE(interpretation.AddToClass(discussant, d).ok());
  std::vector<std::string> violations =
      ModelChecker::Violations(schema, interpretation);
  bool found_isa = false;
  for (const std::string& violation : violations) {
    if (violation.find("(A) ISA violated") != std::string::npos) {
      found_isa = true;
    }
  }
  EXPECT_TRUE(found_isa);
}

TEST(ModelCheckerTest, DetectsTypingViolation) {
  Schema schema = MeetingSchema();
  Interpretation interpretation = Figure6Model(schema);
  // A tuple whose U1 component is a talk, not a speaker.
  RelationshipId holds = schema.FindRelationship("Holds").value();
  Individual talk_j = 2;  // From Figure6Model's creation order.
  ASSERT_TRUE(interpretation.AddTuple(holds, {talk_j, talk_j}).ok());
  std::vector<std::string> violations =
      ModelChecker::Violations(schema, interpretation);
  bool found_typing = false;
  for (const std::string& violation : violations) {
    if (violation.find("(B) typing violated") != std::string::npos) {
      found_typing = true;
    }
  }
  EXPECT_TRUE(found_typing);
}

TEST(ModelCheckerTest, DetectsMaxCardinalityViolationViaRefinement) {
  Schema schema = MeetingSchema();
  Interpretation interpretation(schema);
  Individual d = interpretation.AddIndividual("d");
  std::vector<Individual> talks;
  ClassId speaker = schema.FindClass("Speaker").value();
  ClassId discussant = schema.FindClass("Discussant").value();
  ClassId talk = schema.FindClass("Talk").value();
  ASSERT_TRUE(interpretation.AddToClass(speaker, d).ok());
  ASSERT_TRUE(interpretation.AddToClass(discussant, d).ok());
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RelationshipId participates =
      schema.FindRelationship("Participates").value();
  // d (a discussant) holds three talks: violates maxc(Discussant,Holds,U1)=2
  // even though Speaker alone allows it.
  for (int i = 0; i < 3; ++i) {
    Individual t = interpretation.AddIndividual();
    talks.push_back(t);
    ASSERT_TRUE(interpretation.AddToClass(talk, t).ok());
    ASSERT_TRUE(interpretation.AddTuple(holds, {d, t}).ok());
  }
  ASSERT_TRUE(interpretation.AddTuple(participates, {d, talks[0]}).ok());
  std::vector<std::string> violations =
      ModelChecker::Violations(schema, interpretation);
  bool found_refinement = false;
  for (const std::string& violation : violations) {
    if (violation.find("(C) cardinality violated") != std::string::npos &&
        violation.find("Discussant") != std::string::npos &&
        violation.find("Holds") != std::string::npos) {
      found_refinement = true;
    }
  }
  EXPECT_TRUE(found_refinement);
}

TEST(ModelCheckerTest, DetectsMinCardinalityViolation) {
  Schema schema = MeetingSchema();
  Interpretation interpretation(schema);
  ClassId talk = schema.FindClass("Talk").value();
  Individual t = interpretation.AddIndividual();
  ASSERT_TRUE(interpretation.AddToClass(talk, t).ok());  // Unheld talk.
  std::vector<std::string> violations =
      ModelChecker::Violations(schema, interpretation);
  EXPECT_FALSE(violations.empty());
}

TEST(ModelCheckerTest, DetectsDisjointnessViolation) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "B"}});
  builder.AddDisjointness({"A", "B"});
  Schema schema = builder.Build().value();
  Interpretation interpretation(schema);
  Individual x = interpretation.AddIndividual();
  ASSERT_TRUE(
      interpretation.AddToClass(schema.FindClass("A").value(), x).ok());
  ASSERT_TRUE(
      interpretation.AddToClass(schema.FindClass("B").value(), x).ok());
  std::vector<std::string> violations =
      ModelChecker::Violations(schema, interpretation);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("disjointness violated"), std::string::npos);
}

TEST(ModelCheckerTest, DetectsCoveringViolation) {
  SchemaBuilder builder;
  builder.AddClass("Person");
  builder.AddClass("Adult");
  builder.AddIsa("Adult", "Person");
  builder.AddRelationship("R", {{"U", "Person"}, {"V", "Person"}});
  builder.AddCovering("Person", {"Adult"});
  Schema schema = builder.Build().value();
  Interpretation interpretation(schema);
  Individual x = interpretation.AddIndividual();
  ASSERT_TRUE(
      interpretation.AddToClass(schema.FindClass("Person").value(), x).ok());
  std::vector<std::string> violations =
      ModelChecker::Violations(schema, interpretation);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("covering violated"), std::string::npos);
}

TEST(ModelCheckerTest, ViolationsCarryDeclarationSites) {
  // Line/column positions below refer to this literal; the raw string
  // starts with a newline, so `class` is on line 3.
  NamedSchema parsed = ParseSchema(R"(
    schema Located {
      class Sub, Super, T;
      isa Sub < Super;
      relationship R(U1: Sub, U2: T);
      card Sub in R.U1 = (1, 1);
    }
  )")
                           .value();
  const Schema& schema = parsed.schema;
  Interpretation interpretation(schema);
  Individual d = interpretation.AddIndividual();
  // In Sub but not Super (ISA violation) and in no R tuple (cardinality
  // violation).
  ASSERT_TRUE(
      interpretation.AddToClass(schema.FindClass("Sub").value(), d).ok());

  std::vector<ModelViolation> violations =
      ModelChecker::CheckModel(schema, interpretation, &parsed.source_map);
  ASSERT_EQ(violations.size(), 2u);

  const ModelViolation& isa = violations[0];
  EXPECT_EQ(isa.kind, ModelViolation::Kind::kIsa);
  EXPECT_TRUE(isa.location.IsKnown());
  EXPECT_EQ(isa.location.line, 4);  // `isa Sub < Super;`
  EXPECT_NE(isa.message.find("declared at"), std::string::npos)
      << isa.message;
  EXPECT_NE(isa.message.find(isa.location.ToString()), std::string::npos)
      << isa.message;

  const ModelViolation& card = violations[1];
  EXPECT_EQ(card.kind, ModelViolation::Kind::kCardinality);
  EXPECT_TRUE(card.location.IsKnown());
  EXPECT_EQ(card.location.line, 6);  // `card Sub in R.U1 = (1, 1);`
  EXPECT_NE(card.message.find("declared at"), std::string::npos)
      << card.message;
}

TEST(ModelCheckerTest, ViolationsWithoutSourceMapDegradeToUnknownSites) {
  Schema schema = MeetingSchema();
  Interpretation interpretation(schema);
  Individual d = interpretation.AddIndividual();
  ClassId discussant = schema.FindClass("Discussant").value();
  ASSERT_TRUE(interpretation.AddToClass(discussant, d).ok());
  std::vector<ModelViolation> violations =
      ModelChecker::CheckModel(schema, interpretation);
  ASSERT_FALSE(violations.empty());
  for (const ModelViolation& violation : violations) {
    EXPECT_FALSE(violation.location.IsKnown());
    EXPECT_EQ(violation.message.find("declared at"), std::string::npos)
        << violation.message;
  }
}

TEST(InterpretationTest, DuplicateTupleRejected) {
  Schema schema = MeetingSchema();
  Interpretation interpretation(schema);
  Individual a = interpretation.AddIndividual();
  Individual b = interpretation.AddIndividual();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  ASSERT_TRUE(interpretation.AddTuple(holds, {a, b}).ok());
  Status status = interpretation.AddTuple(holds, {a, b});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(InterpretationTest, ArityMismatchRejected) {
  Schema schema = MeetingSchema();
  Interpretation interpretation(schema);
  Individual a = interpretation.AddIndividual();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  EXPECT_FALSE(interpretation.AddTuple(holds, {a}).ok());
  EXPECT_FALSE(interpretation.AddTuple(holds, {a, a, a}).ok());
}

TEST(InterpretationTest, OutOfRangeArgumentsRejected) {
  Schema schema = MeetingSchema();
  Interpretation interpretation(schema);
  ClassId speaker = schema.FindClass("Speaker").value();
  EXPECT_FALSE(interpretation.AddToClass(speaker, 0).ok());  // No individuals.
  Individual a = interpretation.AddIndividual();
  EXPECT_FALSE(interpretation.AddToClass(ClassId(99), a).ok());
  RelationshipId holds = schema.FindRelationship("Holds").value();
  EXPECT_FALSE(interpretation.AddTuple(holds, {a, 7}).ok());
}

TEST(InterpretationTest, CountTuplesAt) {
  Schema schema = MeetingSchema();
  Interpretation interpretation(schema);
  Individual s = interpretation.AddIndividual();
  Individual t1 = interpretation.AddIndividual();
  Individual t2 = interpretation.AddIndividual();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  ASSERT_TRUE(interpretation.AddTuple(holds, {s, t1}).ok());
  ASSERT_TRUE(interpretation.AddTuple(holds, {s, t2}).ok());
  EXPECT_EQ(interpretation.CountTuplesAt(holds, 0, s), 2u);
  EXPECT_EQ(interpretation.CountTuplesAt(holds, 1, t1), 1u);
  EXPECT_EQ(interpretation.CountTuplesAt(holds, 1, s), 0u);
}

TEST(InterpretationTest, ToStringRendersExtensions) {
  Schema schema = MeetingSchema();
  Interpretation interpretation(schema);
  Individual john = interpretation.AddIndividual("John");
  ClassId speaker = schema.FindClass("Speaker").value();
  ASSERT_TRUE(interpretation.AddToClass(speaker, john).ok());
  std::string text = interpretation.ToString();
  EXPECT_NE(text.find("Speaker = {John}"), std::string::npos);
  EXPECT_NE(text.find("Holds = {}"), std::string::npos);
}

}  // namespace
}  // namespace crsat
