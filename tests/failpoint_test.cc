// Deterministic fault injection (src/base/failpoint.h) and the
// degradation ladder it exercises (DESIGN.md §14). Four layers:
// schedule semantics (nth / every-K / seeded probability, env grammar,
// RAII scoping), a registry coverage sweep proving every registered
// failpoint can actually fire from its production seam, seam-level
// degradation tests (warm-start rejection and mid-repair abort fall back
// to a cold phase 1 with exact accounting; injected guard trips and
// allocation failures surface as honest resource statuses, never wrong
// answers), and a flip-detection test proving the chaos harness would
// catch an unsound ladder.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/crsat.h"
#include "src/server/client.h"
#include "src/server/scheduler.h"
#include "src/server/server.h"
#include "tests/test_schemas.h"

namespace crsat {
namespace {

std::uint64_t Load(const std::atomic<std::uint64_t>& counter) {
  return counter.load(std::memory_order_relaxed);
}

LinearExpr Expr(std::vector<std::pair<int, std::int64_t>> terms,
                std::int64_t constant = 0) {
  LinearExpr expr;
  for (const auto& [var, coefficient] : terms) {
    expr.AddTerm(VarId{var}, Rational(coefficient));
  }
  expr.AddConstant(Rational(constant));
  return expr;
}

// x + y >= 4, x <= 10; maximizing x lands on x = 10 with the >=-row's
// surplus basic — the carried basis the repair tests perturb.
LinearSystem WideSystem() {
  LinearSystem system;
  system.AddVariable("x");
  system.AddVariable("y");
  system.AddGe(Expr({{0, 1}, {1, 1}}, -4));
  system.AddLe(Expr({{0, 1}}, -10));
  return system;
}

// Same shape with the x-cap tightened to 2: the basis carried from
// WideSystem pivots in with a negative right-hand side, forcing
// RepairPrimalFeasibility to run dual pivots.
LinearSystem TightenedSystem() {
  LinearSystem system;
  system.AddVariable("x");
  system.AddVariable("y");
  system.AddGe(Expr({{0, 1}, {1, 1}}, -4));
  system.AddLe(Expr({{0, 1}}, -2));
  return system;
}

WarmStartBasis SolveWideExportingBasis() {
  WarmStartBasis basis;
  SimplexOptions exporting;
  exporting.export_basis = &basis;
  LpResult cold = SimplexSolver::SolveWith(WideSystem(), Expr({{0, 1}}),
                                           /*maximize=*/true, exporting)
                      .value();
  EXPECT_EQ(cold.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(cold.objective, Rational(10));
  EXPECT_FALSE(basis.empty());
  return basis;
}

// --- Registry + schedule semantics -------------------------------------

TEST(FailpointRegistryTest, CatalogIsSortedAndSelfConsistent) {
  const std::vector<std::string>& registry = RegisteredFailpoints();
  ASSERT_FALSE(registry.empty());
  for (size_t i = 1; i < registry.size(); ++i) {
    EXPECT_LT(registry[i - 1], registry[i]);
  }
  for (const std::string& id : registry) {
    EXPECT_TRUE(IsFailpointRegistered(id)) << id;
  }
  EXPECT_FALSE(IsFailpointRegistered("no/such_failpoint"));
}

TEST(FailpointRegistryTest, UnregisteredOrMalformedActivationFails) {
  FailpointSpec unknown;
  unknown.id = "no/such_failpoint";
  EXPECT_EQ(ActivateFailpoint(unknown).code(), StatusCode::kInvalidArgument);

  FailpointSpec zero_n;
  zero_n.id = "guard/trip";
  zero_n.n = 0;
  EXPECT_EQ(ActivateFailpoint(zero_n).code(), StatusCode::kInvalidArgument);

  FailpointSpec bad_probability;
  bad_probability.id = "guard/trip";
  bad_probability.mode = FailpointMode::kProbability;
  bad_probability.probability = 1.5;
  EXPECT_EQ(ActivateFailpoint(bad_probability).code(),
            StatusCode::kInvalidArgument);
}

TEST(FailpointScheduleTest, NthFiresExactlyOnceAtTheNthHit) {
  ResetFailpointCounters();
  FailpointSpec spec;
  spec.id = "guard/trip";
  spec.mode = FailpointMode::kNth;
  spec.n = 3;
  ScopedFailpoint armed(spec);
  ASSERT_TRUE(armed.status().ok());
  std::vector<bool> fired;
  for (int hit = 0; hit < 6; ++hit) {
    fired.push_back(CRSAT_FAILPOINT("guard/trip"));
  }
  EXPECT_EQ(fired, std::vector<bool>({false, false, true, false, false,
                                      false}));
  EXPECT_EQ(GetFailpointCounters("guard/trip").hits, 6u);
  EXPECT_EQ(GetFailpointCounters("guard/trip").fires, 1u);
}

TEST(FailpointScheduleTest, EveryKFiresPeriodically) {
  ResetFailpointCounters();
  FailpointSpec spec;
  spec.id = "guard/trip";
  spec.mode = FailpointMode::kEveryK;
  spec.n = 2;
  ScopedFailpoint armed(spec);
  ASSERT_TRUE(armed.status().ok());
  std::vector<bool> fired;
  for (int hit = 0; hit < 6; ++hit) {
    fired.push_back(CRSAT_FAILPOINT("guard/trip"));
  }
  EXPECT_EQ(fired,
            std::vector<bool>({false, true, false, true, false, true}));
}

TEST(FailpointScheduleTest, SeededProbabilityIsReproducible) {
  auto draw = [](std::uint32_t seed) {
    FailpointSpec spec;
    spec.id = "guard/trip";
    spec.mode = FailpointMode::kProbability;
    spec.probability = 0.5;
    spec.seed = seed;
    ScopedFailpoint armed(spec);
    EXPECT_TRUE(armed.status().ok());
    std::vector<bool> fired;
    for (int hit = 0; hit < 64; ++hit) {
      fired.push_back(CRSAT_FAILPOINT("guard/trip"));
    }
    return fired;
  };
  const std::vector<bool> first = draw(42);
  const std::vector<bool> second = draw(42);
  EXPECT_EQ(first, second);
  // Sanity: p = 0.5 over 64 hits fires at least once and skips at least
  // once (the chance of either tail is 2^-64).
  EXPECT_NE(first, std::vector<bool>(64, false));
  EXPECT_NE(first, std::vector<bool>(64, true));
  EXPECT_NE(first, draw(43));
}

TEST(FailpointScheduleTest, ScopedArmingDisarmsOnExit) {
  {
    ScopedFailpoint armed("guard/trip", /*nth=*/1);
    ASSERT_TRUE(armed.status().ok());
    EXPECT_TRUE(CRSAT_FAILPOINT("guard/trip"));
  }
  EXPECT_FALSE(CRSAT_FAILPOINT("guard/trip"));

  ScopedFailpoint bad("no/such_failpoint", /*nth=*/1);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(FailpointEnvGrammarTest, ParsesEveryScheduleForm) {
  ResetFailpointCounters();
  ASSERT_TRUE(ActivateFailpointsFromSpec(
                  "guard/trip, lp/warm_start_reject=nth:2;"
                  "alloc/simplex=every:3, witness/force_rescale=p:0.5@7")
                  .ok());
  // Bare id means nth:1.
  EXPECT_TRUE(CRSAT_FAILPOINT("guard/trip"));
  EXPECT_FALSE(CRSAT_FAILPOINT("guard/trip"));
  EXPECT_FALSE(CRSAT_FAILPOINT("lp/warm_start_reject"));
  EXPECT_TRUE(CRSAT_FAILPOINT("lp/warm_start_reject"));
  EXPECT_FALSE(CRSAT_FAILPOINT("alloc/simplex"));
  EXPECT_FALSE(CRSAT_FAILPOINT("alloc/simplex"));
  EXPECT_TRUE(CRSAT_FAILPOINT("alloc/simplex"));
  EXPECT_GT(GetFailpointCounters("guard/trip").fires, 0u);
  DeactivateAllFailpoints();
}

TEST(FailpointEnvGrammarTest, MalformedEntriesRejectEarlierEntriesStay) {
  DeactivateAllFailpoints();
  EXPECT_EQ(ActivateFailpointsFromSpec("guard/trip=nth:1,bogus/id=nth:1")
                .code(),
            StatusCode::kInvalidArgument);
  // The well-formed prefix stays armed.
  EXPECT_TRUE(CRSAT_FAILPOINT("guard/trip"));
  DeactivateAllFailpoints();

  EXPECT_FALSE(ActivateFailpointsFromSpec("guard/trip=every:0").ok());
  EXPECT_FALSE(ActivateFailpointsFromSpec("guard/trip=p:2.0@1").ok());
  EXPECT_FALSE(ActivateFailpointsFromSpec("guard/trip=banana").ok());
  EXPECT_FALSE(CRSAT_FAILPOINT("guard/trip"));
}

// --- Registry coverage: every failpoint fires from its seam ------------

// One driver per registered failpoint. Each arms ONLY its own id (the
// seams shadow each other — e.g. a warm-start rejection prevents the
// dual-repair site from ever being reached), runs a workload that
// reaches the seam, and asserts the degraded result is still correct.
// The suite-level test below asserts this table covers the registry
// exactly, so registering a new failpoint without a firing test fails.
struct SeamCase {
  const char* id;
  void (*drive)();
};

void DriveAllocExpansion() {
  Result<Expansion> build = Expansion::Build(testing::MeetingSchema());
  ASSERT_FALSE(build.ok());
  EXPECT_EQ(build.status().code(), StatusCode::kResourceExhausted);
}

void DriveAllocSimplex() {
  Result<LpResult> solve = SimplexSolver::SolveWith(
      WideSystem(), Expr({{0, 1}}), /*maximize=*/true, SimplexOptions{});
  ASSERT_FALSE(solve.ok());
  EXPECT_EQ(solve.status().code(), StatusCode::kResourceExhausted);
}

void DriveGuardTrip() {
  ResourceGuard guard;  // Unlimited: only the injected fault can trip it.
  const Status status = guard.Check("failpoint_test/site");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(guard.tripped());
  EXPECT_EQ(guard.report().tripped, ResourceLimitKind::kInjected);
  // The trip is sticky, exactly like a genuine budget trip.
  EXPECT_EQ(guard.Check("failpoint_test/later").code(),
            StatusCode::kResourceExhausted);
}

void DriveIncrementalForceCold() {
  ScopedIncrementalOverride on(true);
  EXPECT_FALSE(IncrementalReasoningEnabled());
}

void DriveFastTierOverflow() {
  GetSimplexStats().Reset();
  LpResult result = SimplexSolver::SolveWith(WideSystem(), Expr({{0, 1}}),
                                             /*maximize=*/true,
                                             SimplexOptions{})
                        .value();
  EXPECT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(result.objective, Rational(10));  // Exact tier, same answer.
  EXPECT_GE(Load(GetSimplexStats().tier_fallbacks), 1u);
}

void DriveWarmStartReject() {
  ScopedIncrementalOverride on(true);
  WarmStartBasis basis = SolveWideExportingBasis();
  GetSimplexStats().Reset();
  SimplexOptions warm;
  warm.warm_start = &basis;
  LpResult result = SimplexSolver::SolveWith(WideSystem(), Expr({{0, 1}}),
                                             /*maximize=*/true, warm)
                        .value();
  EXPECT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(result.objective, Rational(10));  // Cold fallback, same answer.
  EXPECT_EQ(Load(GetSimplexStats().warm_start_hits), 0u);
  EXPECT_EQ(Load(GetSimplexStats().warm_start_misses), 1u);
}

void DriveDualRepairAbort() {
  ScopedIncrementalOverride on(true);
  WarmStartBasis basis = SolveWideExportingBasis();
  GetSimplexStats().Reset();
  SimplexOptions warm;
  warm.warm_start = &basis;
  LpResult result =
      SimplexSolver::SolveWith(TightenedSystem(), Expr({{0, 1}}),
                               /*maximize=*/true, warm)
          .value();
  EXPECT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(result.objective, Rational(2));  // Cold fallback, same answer.
  EXPECT_EQ(Load(GetSimplexStats().warm_start_misses), 1u);
  EXPECT_EQ(Load(GetSimplexStats().incremental_fallbacks), 1u);
}

void DriveSupportCoverFail() {
  ScopedIncrementalOverride on(true);
  Schema schema = testing::MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  std::vector<bool> degraded = checker.Support().value().positive;

  DeactivateAllFailpoints();  // Reference run outside the fault.
  SatisfiabilityChecker reference_checker(expansion);
  EXPECT_EQ(degraded, reference_checker.Support().value().positive);
}

void DriveWitnessForceFlowRefine() {
  Schema schema = testing::MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  WitnessSynthesizer synthesizer(checker);
  CertifiedWitness witness = synthesizer.Synthesize().value();
  EXPECT_TRUE(ModelChecker::IsModel(schema, witness.interpretation()));
}

void DriveWitnessForceRescale() {
  GetRecoveryStats().Reset();
  Schema schema = testing::MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  WitnessSynthesizer synthesizer(checker);
  CertifiedWitness witness = synthesizer.Synthesize().value();
  EXPECT_TRUE(ModelChecker::IsModel(schema, witness.interpretation()));
  EXPECT_GE(Load(GetRecoveryStats().witness_rescales), 1u);
}

// Self-loop schema with a finite model: saturation normally certifies a
// two-individual cycle, so both injected stops have a meaningful result
// to degrade from.
Schema SaturationSeamSchema() {
  return ParseSchema(
             "schema Seam {\n"
             "  class A;\n"
             "  relationship R(V1: A, V2: A);\n"
             "  card A in R.V1 = (1, 1);\n"
             "}\n")
      .value()
      .schema;
}

void DriveSaturationExpand() {
  // Phase A polls this failpoint before every template expansion; an
  // injected stop must surface as an honest kUnknown — never a guessed
  // verdict, and never a model.
  Schema schema = SaturationSeamSchema();
  SaturationClassResult result =
      SaturationEngine::DecideClass(schema, schema.FindClass("A").value());
  EXPECT_EQ(result.verdict, SaturationVerdict::kUnknown);
  EXPECT_FALSE(result.unknown_reason.empty());
  EXPECT_FALSE(result.model.has_value());
}

void DriveSaturationMaterialize() {
  // Phase B (finite materialization) polls this failpoint on every
  // solver step; an injected failure degrades the certified finite
  // model to the weaker sat-with-reuse claim, still backed by the valid
  // phase A graph built before the fault.
  Schema schema = SaturationSeamSchema();
  const ClassId cls = schema.FindClass("A").value();
  SaturationClassResult result = SaturationEngine::DecideClass(schema, cls);
  EXPECT_EQ(result.verdict, SaturationVerdict::kSatWithReuse);
  EXPECT_FALSE(result.model.has_value());
  EXPECT_TRUE(ValidateSaturationGraph(schema, result.graph, cls).empty());
}

void DriveServerAccept() {
  // A fired accept failpoint skips one poll round; the connection waits
  // in the listen backlog and is served on the next — a delay, never a
  // drop, so the request still completes with its verdict intact.
  server::ServerOptions options;
  options.port = 0;
  options.threads = 2;
  server::Server daemon(options);
  ASSERT_TRUE(daemon.Start().ok());
  server::Client client;
  ASSERT_TRUE(client.ConnectTcp(daemon.port()).ok());
  auto reply = client.Call(server::RequestType::kStats, "");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, server::ResponseStatus::kOk);
  daemon.BeginDrain();
  daemon.Wait();
}

void DriveServerQueueFull() {
  // The forced-shed seam: admission control refuses with kOverloaded
  // and the work is dropped before it ever queues.
  ThreadPool pool(2);
  server::RequestScheduler scheduler(&pool, {});
  scheduler.OpenLane(1);
  EXPECT_EQ(scheduler.Submit(1, 0, [] {}),
            server::ResponseStatus::kOverloaded);
  EXPECT_EQ(scheduler.stats().shed, 1u);
  scheduler.AwaitIdle();
}

void DriveServerShortRead() {
  // Every recv delivers one byte; the reassembly buffer must still
  // produce the same frames and the same answer.
  server::ServerOptions options;
  options.port = 0;
  options.threads = 2;
  server::Server daemon(options);
  ASSERT_TRUE(daemon.Start().ok());
  server::Client client;
  ASSERT_TRUE(client.ConnectTcp(daemon.port()).ok());
  auto parsed = client.Parse("seam.cr", "schema Seam { class A; }\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, server::ResponseStatus::kOk);
  auto reply = client.Call(server::RequestType::kCheck, "");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, server::ResponseStatus::kOk);
  daemon.BeginDrain();
  daemon.Wait();
}

constexpr SeamCase kSeamCases[] = {
    {"alloc/expansion", DriveAllocExpansion},
    {"alloc/simplex", DriveAllocSimplex},
    {"guard/trip", DriveGuardTrip},
    {"incremental/force_cold", DriveIncrementalForceCold},
    {"lp/dual_repair_abort", DriveDualRepairAbort},
    {"lp/fast_tier_overflow", DriveFastTierOverflow},
    {"lp/support_cover_fail", DriveSupportCoverFail},
    {"lp/warm_start_reject", DriveWarmStartReject},
    {"saturation/expand", DriveSaturationExpand},
    {"saturation/materialize", DriveSaturationMaterialize},
    {"server/accept", DriveServerAccept},
    {"server/queue-full", DriveServerQueueFull},
    {"server/short-read", DriveServerShortRead},
    {"witness/force_flow_refine", DriveWitnessForceFlowRefine},
    {"witness/force_rescale", DriveWitnessForceRescale},
};

TEST(FailpointCoverageTest, EveryRegisteredFailpointFiresFromItsSeam) {
  for (const SeamCase& seam : kSeamCases) {
    SCOPED_TRACE(seam.id);
    ResetFailpointCounters();
    FailpointSpec spec;
    spec.id = seam.id;
    // force_rescale on every hit would burn the whole bounded retry
    // budget, and an accept skip on every poll round would never accept
    // at all; firing once proves those seams and keeps the outcome.
    const bool once = std::string(seam.id) == "witness/force_rescale" ||
                      std::string(seam.id) == "server/accept";
    spec.mode = once ? FailpointMode::kNth : FailpointMode::kEveryK;
    spec.n = 1;
    {
      ScopedFailpoint armed(spec);
      ASSERT_TRUE(armed.status().ok());
      seam.drive();
    }
    EXPECT_GT(GetFailpointCounters(seam.id).fires, 0u)
        << "seam workload never reached the failpoint";
  }
  ResetFailpointCounters();
}

TEST(FailpointCoverageTest, SeamTableCoversTheRegistryExactly) {
  std::set<std::string> driven;
  for (const SeamCase& seam : kSeamCases) {
    driven.insert(seam.id);
  }
  const std::vector<std::string>& registry = RegisteredFailpoints();
  EXPECT_EQ(driven,
            std::set<std::string>(registry.begin(), registry.end()))
      << "every registered failpoint needs a firing seam test";
}

// --- Mid-repair degradation: accounting at 1/2/8 threads ---------------

// An abort in the middle of RepairPrimalFeasibility must fall back to a
// cold phase 1 with the verdicts unchanged and the books balanced: the
// failed attempt is a warm-start miss AND an incremental fallback, and
// the faulted sweep reaches the same verdicts as the clean one with the
// same total number of warm-start attempts.
TEST(MidRepairDegradationTest, RepairAbortFallsBackColdAcrossThreadCounts) {
  ScopedIncrementalOverride on(true);
  Schema schema = testing::MeetingSchema();
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    SetGlobalThreadCount(threads);

    GetSimplexStats().Reset();
    GetRecoveryStats().Reset();
    Expansion clean_expansion = Expansion::Build(schema).value();
    SatisfiabilityChecker clean_checker(clean_expansion);
    const std::vector<bool> clean = clean_checker.SatisfiableClasses().value();
    const std::uint64_t clean_attempts =
        Load(GetSimplexStats().warm_start_hits) +
        Load(GetSimplexStats().warm_start_misses);

    // Deterministic LP-level repair, per thread count: the carried basis
    // goes primal-infeasible, repair starts, the failpoint aborts it.
    WarmStartBasis basis = SolveWideExportingBasis();
    GetSimplexStats().Reset();
    {
      ScopedFailpoint armed("lp/dual_repair_abort", /*nth=*/1);
      ASSERT_TRUE(armed.status().ok());
      SimplexOptions warm;
      warm.warm_start = &basis;
      LpResult repaired =
          SimplexSolver::SolveWith(TightenedSystem(), Expr({{0, 1}}),
                                   /*maximize=*/true, warm)
              .value();
      EXPECT_EQ(repaired.outcome, LpOutcome::kOptimal);
      EXPECT_EQ(repaired.objective, Rational(2));
    }
    EXPECT_EQ(Load(GetSimplexStats().warm_start_hits), 0u);
    EXPECT_EQ(Load(GetSimplexStats().warm_start_misses), 1u);
    EXPECT_EQ(Load(GetSimplexStats().incremental_fallbacks), 1u);
    EXPECT_GE(Load(GetRecoveryStats().warm_start_fallbacks), 1u);

    // Whole-pipeline re-run with every repair aborted: same verdicts,
    // same number of warm-start attempts, every attempted repair now a
    // miss instead of a hit.
    GetSimplexStats().Reset();
    {
      FailpointSpec spec;
      spec.id = "lp/dual_repair_abort";
      spec.mode = FailpointMode::kEveryK;
      spec.n = 1;
      ScopedFailpoint armed(spec);
      ASSERT_TRUE(armed.status().ok());
      Expansion expansion = Expansion::Build(schema).value();
      SatisfiabilityChecker checker(expansion);
      EXPECT_EQ(checker.SatisfiableClasses().value(), clean);
    }
    EXPECT_EQ(Load(GetSimplexStats().warm_start_hits) +
                  Load(GetSimplexStats().warm_start_misses),
              clean_attempts);
  }
  SetGlobalThreadCount(1);
}

// A guard trip *during* repair must not fall back at all: the trip is
// sticky, so the solve unwinds with the honest resource status instead
// of burning the rest of the budget on a cold phase 1.
TEST(MidRepairDegradationTest, GuardTripDuringRepairSurfacesAsResource) {
  ScopedIncrementalOverride on(true);
  WarmStartBasis basis = SolveWideExportingBasis();
  ResourceGuard guard;
  ScopedFailpoint armed("guard/trip", /*nth=*/1);
  ASSERT_TRUE(armed.status().ok());
  SimplexOptions warm;
  warm.warm_start = &basis;
  warm.guard = &guard;
  Result<LpResult> tripped = SimplexSolver::SolveWith(
      TightenedSystem(), Expr({{0, 1}}), /*maximize=*/true, warm);
  ASSERT_FALSE(tripped.ok());
  EXPECT_TRUE(IsResourceLimitStatus(tripped.status().code()));
  EXPECT_EQ(guard.report().tripped, ResourceLimitKind::kInjected);
}

// --- Degradation policy ------------------------------------------------

TEST(DegradationPolicyTest, ScopedPolicyAppliesAndRestores) {
  const DegradationPolicy initial = GetDegradationPolicy();
  EXPECT_TRUE(initial.allow_incremental);
  EXPECT_TRUE(initial.allow_fast_tier);
  {
    DegradationPolicy pinned;
    pinned.allow_incremental = false;
    pinned.allow_fast_tier = false;
    pinned.max_witness_rescales = 2;
    ScopedDegradationPolicy scope(pinned);
    EXPECT_FALSE(GetDegradationPolicy().allow_incremental);
    EXPECT_FALSE(GetDegradationPolicy().allow_fast_tier);
    EXPECT_EQ(GetDegradationPolicy().max_witness_rescales, 2);
  }
  EXPECT_TRUE(GetDegradationPolicy().allow_incremental);
  EXPECT_EQ(GetDegradationPolicy().max_witness_rescales,
            initial.max_witness_rescales);
}

TEST(DegradationPolicyTest, DisallowingFastTierForcesExactTier) {
  DegradationPolicy exact_only;
  exact_only.allow_fast_tier = false;
  ScopedDegradationPolicy scope(exact_only);
  GetSimplexStats().Reset();
  LpResult result = SimplexSolver::SolveWith(WideSystem(), Expr({{0, 1}}),
                                             /*maximize=*/true,
                                             SimplexOptions{})
                        .value();
  EXPECT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(result.objective, Rational(10));
  EXPECT_EQ(Load(GetSimplexStats().fast_solves), 0u);
  EXPECT_GE(Load(GetSimplexStats().tier_fallbacks), 1u);
}

// --- Chaos conformance: soundness + flip detection ---------------------

TEST(ChaosConformanceTest, SmallSweepReportsNoFlips) {
  ChaosConformanceOptions options;
  options.num_seeds = 12;
  options.first_seed = 1;
  GetRecoveryStats().Reset();
  ResetFailpointCounters();
  ChaosReport report = RunChaosConformance(options).value();
  EXPECT_EQ(report.seeds_swept, 12);
  EXPECT_TRUE(report.flips.empty()) << report.Summary();
  // Zero flips over zero faults proves nothing: require positive
  // evidence that faults actually fired and some runs still agreed.
  EXPECT_GT(report.faults_fired, 0u);
  EXPECT_GT(report.faulted_runs_agreeing, 0);
  // Every armed failpoint is restored before returning.
  EXPECT_FALSE(CRSAT_FAILPOINT("guard/trip"));
}

TEST(ChaosConformanceTest, InjectedVerdictFlipIsDetected) {
  // The harness must convict a ladder that silently flips a verdict:
  // flip class 0 in every faulted run and require at least one
  // "verdict-flip" finding (seeds where the faulted run degrades to
  // UNKNOWN legitimately report nothing, hence "at least one" over a
  // small sweep, not "every seed").
  ChaosConformanceOptions options;
  options.num_seeds = 12;
  options.first_seed = 1;
  options.inject_flip_class = 0;
  options.check_witnesses = false;  // Isolate the verdict comparison.
  ChaosReport report = RunChaosConformance(options).value();
  bool saw_flip = false;
  for (const ChaosVerdictFlip& flip : report.flips) {
    EXPECT_EQ(flip.kind, "verdict-flip");
    EXPECT_FALSE(flip.fault_schedule.empty());
    saw_flip = true;
  }
  EXPECT_TRUE(saw_flip)
      << "chaos harness failed to detect an injected verdict flip";
}

}  // namespace
}  // namespace crsat
