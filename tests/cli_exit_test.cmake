# Exercises the crsat_cli exit-code contract end to end:
#   0  success, no findings
#   1  findings (unsatisfiable classes, lint diagnostics) or failure
#   2  usage error (bad subcommand, malformed flag value)
#   3  resource limit tripped (deadline / compound budget / memory budget)
#
# Run as: cmake -DCRSAT_CLI=<binary> -DCRSAT_SOURCE_DIR=<repo> -P this-file

if(NOT DEFINED CRSAT_CLI OR NOT DEFINED CRSAT_SOURCE_DIR)
  message(FATAL_ERROR "pass -DCRSAT_CLI=... and -DCRSAT_SOURCE_DIR=...")
endif()

set(SCHEMAS "${CRSAT_SOURCE_DIR}/examples/schemas")

function(expect_exit expected)
  execute_process(
    COMMAND ${CRSAT_CLI} ${ARGN}
    RESULT_VARIABLE actual
    OUTPUT_QUIET ERROR_QUIET)
  if(NOT actual EQUAL expected)
    string(JOIN " " argv ${ARGN})
    message(FATAL_ERROR
      "crsat_cli ${argv}: expected exit ${expected}, got ${actual}")
  endif()
endfunction()

# Usage errors -> 2. (Flags follow the schema path: `check <file> [flags]`.)
expect_exit(2)
expect_exit(2 frobnicate)
expect_exit(2 check)
expect_exit(2 check "${SCHEMAS}/meeting.cr" --timeout-ms abc)
expect_exit(2 check "${SCHEMAS}/meeting.cr" --timeout-ms)
expect_exit(2 check "${SCHEMAS}/meeting.cr" --max-compounds -7)

# Clean runs -> 0 (with and without guard flags; generous limits must not
# change the verdict).
expect_exit(0 check "${SCHEMAS}/meeting.cr")
expect_exit(0 check "${SCHEMAS}/meeting.cr" --json)
expect_exit(0 check "${SCHEMAS}/meeting.cr" --timeout-ms 60000
  --max-compounds 1000000 --max-memory-mb 1024)

# Findings -> 1.
expect_exit(1 check "${SCHEMAS}/figure1.cr")
expect_exit(1 lint "${SCHEMAS}/lint_demo.cr")
expect_exit(1 check "${SCHEMAS}/no_such_file.cr")

# --witness keeps the verdict-driven exit code: certified witness on a
# satisfiable schema, nothing to witness on an all-unsat one, and bad
# renderer names are usage errors.
expect_exit(0 check "${SCHEMAS}/meeting.cr" --witness)
expect_exit(0 check "${SCHEMAS}/meeting.cr" --witness=json --json)
expect_exit(0 check "${SCHEMAS}/meeting.cr" --witness=dot)
expect_exit(1 check "${SCHEMAS}/figure1.cr" --witness)
expect_exit(2 check "${SCHEMAS}/meeting.cr" --witness=yaml)

# A resource limit tripped *during witness synthesis* downgrades to the
# already-computed SAT verdict (exit 0, witness replaced by the trip
# report); the same limit tripping before the verdict still exits 3.
expect_exit(0 check "${SCHEMAS}/witness_heavy.cr" --witness --max-memory-mb 1)
expect_exit(0 check "${SCHEMAS}/witness_heavy.cr" --witness=json --json
  --max-memory-mb 1)
expect_exit(3 check "${SCHEMAS}/witness_heavy.cr" --witness --timeout-ms 0)

# Resource trips -> 3, in both output modes.
expect_exit(3 check "${SCHEMAS}/meeting.cr" --timeout-ms 0)
expect_exit(3 check "${SCHEMAS}/meeting.cr" --max-compounds 5)
expect_exit(3 check "${SCHEMAS}/meeting.cr" --json --max-compounds 5)
expect_exit(3 lint "${SCHEMAS}/lint_demo.cr" --timeout-ms 0)

# Injected faults via CRSAT_FAILPOINTS: a simulated allocation failure is
# a resource limit (exit 3) even with no guard flag configured, and a
# recoverable fault (warm-start rejection) degrades without changing the
# verdict or exit code.
function(expect_exit_env expected env)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ${env} ${CRSAT_CLI} ${ARGN}
    RESULT_VARIABLE actual
    OUTPUT_QUIET ERROR_QUIET)
  if(NOT actual EQUAL expected)
    string(JOIN " " argv ${ARGN})
    message(FATAL_ERROR
      "${env} crsat_cli ${argv}: expected exit ${expected}, got ${actual}")
  endif()
endfunction()
expect_exit_env(3 "CRSAT_FAILPOINTS=alloc/expansion=nth:1"
  check "${SCHEMAS}/meeting.cr")
expect_exit_env(3 "CRSAT_FAILPOINTS=alloc/simplex=nth:1"
  check "${SCHEMAS}/meeting.cr")
expect_exit_env(0 "CRSAT_FAILPOINTS=lp/warm_start_reject=every:2"
  check "${SCHEMAS}/meeting.cr")
expect_exit_env(1 "CRSAT_FAILPOINTS=incremental/force_cold"
  check "${SCHEMAS}/figure1.cr")

message(STATUS "cli_exit_test: all exit-code expectations held")
