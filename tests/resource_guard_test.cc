#include "src/base/resource_guard.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/thread_pool.h"
#include "src/cr/schema_text.h"
#include "src/cr/text_lexer.h"
#include "src/expansion/expansion.h"
#include "src/lp/linear_system.h"
#include "src/lp/simplex.h"
#include "src/reasoner/implication_engine.h"
#include "src/reasoner/satisfiability.h"
#include "tests/test_schemas.h"

namespace crsat {
namespace {

using crsat::testing::MeetingSchema;

LinearExpr Expr(std::vector<std::pair<VarId, std::int64_t>> terms,
                std::int64_t constant = 0) {
  LinearExpr expr;
  for (const auto& [var, coeff] : terms) {
    expr.AddTerm(var, Rational(coeff));
  }
  expr.AddConstant(Rational(constant));
  return expr;
}

// Restores the global pool's default parallelism when a test tweaks it.
class ThreadCountRestorer {
 public:
  ~ThreadCountRestorer() { SetGlobalThreadCount(0); }
};

// ---------------------------------------------------------------------------
// Guard primitives.

TEST(ResourceGuardTest, UnlimitedGuardNeverTrips) {
  ResourceGuard guard;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(guard.Check("test/site").ok());
  }
  guard.AddCompounds(1 << 20);
  guard.AddMemory(std::uint64_t{1} << 40);
  EXPECT_TRUE(guard.CheckNow("test/site").ok());
  EXPECT_FALSE(guard.tripped());
  EXPECT_TRUE(guard.TripStatus().ok());
  ResourceReport report = guard.report();
  EXPECT_EQ(report.tripped, ResourceLimitKind::kNone);
  EXPECT_EQ(report.compounds, std::uint64_t{1} << 20);
  EXPECT_GE(report.checks, 101u);
}

TEST(ResourceGuardTest, ExpiredDeadlineTripsOnFirstCheckAndIsSticky) {
  ResourceLimits limits;
  limits.timeout = std::chrono::milliseconds(0);
  ResourceGuard guard(limits);
  Status status = guard.Check("first/site");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(guard.tripped());
  // Sticky: later checks report the original trip site, not their own.
  Status later = guard.Check("second/site");
  EXPECT_EQ(later.code(), StatusCode::kDeadlineExceeded);
  ResourceReport report = guard.report();
  EXPECT_EQ(report.tripped, ResourceLimitKind::kDeadline);
  EXPECT_EQ(report.site, "first/site");
}

TEST(ResourceGuardTest, CompoundBudgetTrips) {
  ResourceLimits limits;
  limits.max_compounds = 10;
  ResourceGuard guard(limits);
  guard.AddCompounds(10);
  EXPECT_TRUE(guard.Check("site/a").ok()) << "budget not yet exceeded";
  guard.AddCompounds(1);
  Status status = guard.Check("site/b");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(guard.report().tripped, ResourceLimitKind::kCompounds);
  EXPECT_EQ(guard.report().site, "site/b");
}

TEST(ResourceGuardTest, MemoryBudgetAndScopedCharge) {
  ResourceLimits limits;
  limits.max_memory_bytes = 1000;
  ResourceGuard guard(limits);
  {
    ScopedMemoryCharge charge(&guard, 600);
    EXPECT_EQ(guard.memory_bytes(), 600u);
    EXPECT_TRUE(guard.CheckNow("mem/a").ok());
  }
  EXPECT_EQ(guard.memory_bytes(), 0u) << "scope released its charge";
  EXPECT_EQ(guard.report().peak_memory_bytes, 600u);

  ScopedMemoryCharge big(&guard, 800);
  big.Add(300);
  EXPECT_EQ(guard.memory_bytes(), 1100u);
  Status status = guard.CheckNow("mem/b");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(guard.report().tripped, ResourceLimitKind::kMemory);

  // Move semantics: exactly one release.
  ScopedMemoryCharge moved = std::move(big);
  (void)moved;
}

TEST(ResourceGuardTest, ScopedChargeNullGuardIsNoOp) {
  ScopedMemoryCharge charge(nullptr, 1 << 30);
  charge.Add(1 << 30);
}

TEST(ResourceGuardTest, CancellationObservedByNextCheck) {
  ResourceGuard guard;
  EXPECT_TRUE(guard.Check("pre/cancel").ok());
  guard.RequestCancel();
  EXPECT_TRUE(guard.cancel_requested());
  Status status = guard.Check("post/cancel");
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(guard.report().tripped, ResourceLimitKind::kCancelled);
  EXPECT_EQ(guard.report().site, "post/cancel");
}

TEST(ResourceGuardTest, IsResourceLimitStatusClassifiesCodes) {
  EXPECT_TRUE(IsResourceLimitStatus(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsResourceLimitStatus(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsResourceLimitStatus(StatusCode::kCancelled));
  EXPECT_FALSE(IsResourceLimitStatus(StatusCode::kOk));
  EXPECT_FALSE(IsResourceLimitStatus(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsResourceLimitStatus(StatusCode::kInternal));
}

TEST(ResourceGuardTest, ReportSerializesToJson) {
  ResourceLimits limits;
  limits.max_compounds = 1;
  ResourceGuard guard(limits);
  guard.AddCompounds(2);
  ASSERT_FALSE(guard.Check("json/site").ok());
  std::string json = guard.report().ToJson();
  EXPECT_NE(json.find("\"tripped\": \"compounds\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"site\": \"json/site\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"compounds\": 2"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Guard trips at each pipeline layer.

TEST(ResourceGuardPipelineTest, DeadlineTripsExpansionBuild) {
  Schema schema = MeetingSchema();
  ResourceLimits limits;
  limits.timeout = std::chrono::milliseconds(0);
  ResourceGuard guard(limits);
  ExpansionOptions options;
  options.guard = &guard;
  Result<Expansion> expansion = Expansion::Build(schema, options);
  ASSERT_FALSE(expansion.ok());
  EXPECT_EQ(expansion.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(guard.tripped());
  EXPECT_EQ(guard.report().tripped, ResourceLimitKind::kDeadline);
  EXPECT_FALSE(guard.report().site.empty());
}

TEST(ResourceGuardPipelineTest, CompoundBudgetTripsMidEnumeration) {
  Schema schema = MeetingSchema();
  ResourceLimits limits;
  limits.max_compounds = 5;  // The meeting expansion needs 23.
  ResourceGuard guard(limits);
  ExpansionOptions options;
  options.guard = &guard;
  Result<Expansion> expansion = Expansion::Build(schema, options);
  ASSERT_FALSE(expansion.ok());
  EXPECT_EQ(expansion.status().code(), StatusCode::kResourceExhausted);
  ResourceReport report = guard.report();
  EXPECT_EQ(report.tripped, ResourceLimitKind::kCompounds);
  // Accounting may overshoot by the compound that crossed the budget, but
  // the enumeration must have stopped right after.
  EXPECT_GE(report.compounds, 5u);
  EXPECT_LE(report.compounds, 7u);
}

TEST(ResourceGuardPipelineTest, SimplexTripsOnExpiredDeadline) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  VarId y = system.AddVariable("y");
  system.AddLe(Expr({{x, 1}, {y, 2}}, -4));
  system.AddLe(Expr({{x, 3}, {y, 1}}, -6));
  ResourceLimits limits;
  limits.timeout = std::chrono::milliseconds(0);
  ResourceGuard guard(limits);
  SimplexOptions options;
  options.guard = &guard;
  Result<LpResult> result =
      SimplexSolver::SolveWith(system, Expr({{x, 1}, {y, 1}}), true, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ResourceGuardPipelineTest, SatisfiabilityReportsTripFromSharedGuard) {
  Schema schema = MeetingSchema();
  ResourceGuard guard;  // Unlimited until cancelled.
  ExpansionOptions options;
  options.guard = &guard;
  Result<Expansion> expansion = Expansion::Build(schema, options);
  ASSERT_TRUE(expansion.ok()) << expansion.status();
  guard.RequestCancel();
  SatisfiabilityChecker checker(*expansion);
  Result<std::vector<bool>> verdicts = checker.SatisfiableClasses();
  ASSERT_FALSE(verdicts.ok());
  EXPECT_EQ(verdicts.status().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation in ParallelFor.

TEST(ResourceGuardParallelForTest, CancellationSkipsRemainingItems) {
  ThreadPool pool(4);
  ResourceGuard guard;
  std::atomic<int> executed{0};
  constexpr size_t kItems = 1000;
  pool.ParallelFor(
      kItems,
      [&](size_t index) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (index == 0) {
          guard.RequestCancel();
        }
      },
      &guard);
  // The loop drained (ParallelFor returned) but most items were skipped:
  // at most the items already claimed before the cancel ran.
  EXPECT_GE(executed.load(), 1);
  EXPECT_LT(executed.load(), static_cast<int>(kItems));
  EXPECT_EQ(guard.TripStatus().code(), StatusCode::kCancelled);

  // The pool is reusable after a cancelled loop.
  std::atomic<int> second{0};
  pool.ParallelFor(100, [&](size_t) { second.fetch_add(1); });
  EXPECT_EQ(second.load(), 100);
}

TEST(ResourceGuardParallelForTest, SingleThreadCancellationIsDeterministic) {
  ThreadPool pool(1);
  ResourceGuard guard;
  std::atomic<int> executed{0};
  pool.ParallelFor(
      100,
      [&](size_t index) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (index == 4) {
          guard.RequestCancel();
        }
      },
      &guard);
  // Inline execution visits indices in order and polls the guard before
  // each item: exactly items 0..4 ran.
  EXPECT_EQ(executed.load(), 5);
  EXPECT_EQ(guard.TripStatus().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Determinism: a guarded run that does not trip is bit-identical to an
// unguarded one, at any thread count.

TEST(ResourceGuardDeterminismTest, GuardedVerdictsMatchUnguarded) {
  ThreadCountRestorer restore;
  Schema schema = MeetingSchema();
  std::optional<std::vector<bool>> reference;
  for (int threads : {1, 2, 8}) {
    SetGlobalThreadCount(threads);

    Result<Expansion> plain = Expansion::Build(schema);
    ASSERT_TRUE(plain.ok());
    SatisfiabilityChecker unguarded(*plain);
    std::vector<bool> baseline = unguarded.SatisfiableClasses().value();

    ResourceLimits limits;  // Generous: must not trip.
    limits.timeout = std::chrono::milliseconds(60000);
    limits.max_compounds = 1000000;
    limits.max_memory_bytes = std::uint64_t{1} << 30;
    ResourceGuard guard(limits);
    ExpansionOptions options;
    options.guard = &guard;
    Result<Expansion> expansion = Expansion::Build(schema, options);
    ASSERT_TRUE(expansion.ok());
    SatisfiabilityChecker guarded(*expansion);
    std::vector<bool> verdicts = guarded.SatisfiableClasses().value();

    EXPECT_FALSE(guard.tripped());
    EXPECT_EQ(verdicts, baseline) << "threads=" << threads;
    if (!reference.has_value()) {
      reference = baseline;
    } else {
      EXPECT_EQ(baseline, *reference) << "threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Partial implication batches.

TEST(ResourceGuardImplicationTest, CheckAllPartialReportsUnknownAfterTrip) {
  Schema schema = MeetingSchema();
  ClassId speaker = schema.FindClass("Speaker").value();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RoleId u1 = schema.FindRole("U1").value();

  ResourceGuard guard;
  ExpansionOptions options;
  options.guard = &guard;
  CardinalityImplicationEngine engine =
      CardinalityImplicationEngine::Create(schema, speaker, holds, u1,
                                           options)
          .value();
  std::vector<ImplicationQuery> queries;
  for (std::uint64_t bound = 0; bound <= 4; ++bound) {
    queries.push_back({ImplicationQuery::Kind::kMin, bound});
    queries.push_back({ImplicationQuery::Kind::kMax, bound});
  }

  guard.RequestCancel();
  std::vector<ImplicationVerdict> verdicts =
      engine.CheckAllPartial(queries).value();
  ASSERT_EQ(verdicts.size(), queries.size());
  for (const ImplicationVerdict& verdict : verdicts) {
    EXPECT_FALSE(verdict.known());
    EXPECT_EQ(verdict.reason, StatusCode::kCancelled);
  }
  // The strict batch API surfaces the trip as an error.
  Result<std::vector<bool>> strict = engine.CheckAll(queries);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kCancelled);
}

TEST(ResourceGuardImplicationTest, CheckAllPartialMatchesCheckAllUntripped) {
  Schema schema = MeetingSchema();
  ClassId speaker = schema.FindClass("Speaker").value();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RoleId u1 = schema.FindRole("U1").value();
  CardinalityImplicationEngine engine =
      CardinalityImplicationEngine::Create(schema, speaker, holds, u1)
          .value();
  std::vector<ImplicationQuery> queries;
  for (std::uint64_t bound = 0; bound <= 4; ++bound) {
    queries.push_back({ImplicationQuery::Kind::kMin, bound});
    queries.push_back({ImplicationQuery::Kind::kMax, bound});
  }
  std::vector<bool> strict = engine.CheckAll(queries).value();
  std::vector<ImplicationVerdict> partial =
      engine.CheckAllPartial(queries).value();
  ASSERT_EQ(partial.size(), strict.size());
  for (size_t i = 0; i < strict.size(); ++i) {
    EXPECT_TRUE(partial[i].known()) << "query " << i;
    EXPECT_EQ(partial[i].implied(), strict[i]) << "query " << i;
    EXPECT_EQ(partial[i].reason, StatusCode::kOk) << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Per-invocation solver stats: a Reset between batches must make the
// counters independent of earlier work (no leak across batches).

TEST(SimplexStatsTest, ResetMakesBatchCountersIndependent) {
  ThreadCountRestorer restore;
  SetGlobalThreadCount(1);  // Deterministic pivot/warm-start counts.
  Schema schema = MeetingSchema();
  ClassId speaker = schema.FindClass("Speaker").value();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RoleId u1 = schema.FindRole("U1").value();
  std::vector<ImplicationQuery> queries;
  for (std::uint64_t bound = 0; bound <= 3; ++bound) {
    queries.push_back({ImplicationQuery::Kind::kMin, bound});
  }

  auto run_batch = [&]() {
    CardinalityImplicationEngine engine =
        CardinalityImplicationEngine::Create(schema, speaker, holds, u1)
            .value();
    return engine.CheckAll(queries).value();
  };

  SimplexStats& stats = GetSimplexStats();
  stats.Reset();
  EXPECT_EQ(stats.solves.load(), 0u);
  std::vector<bool> first = run_batch();
  std::uint64_t first_solves = stats.solves.load();
  std::uint64_t first_pivots = stats.pivots.load();
  EXPECT_GT(first_solves, 0u);

  stats.Reset();
  std::vector<bool> second = run_batch();
  EXPECT_EQ(second, first);
  EXPECT_EQ(stats.solves.load(), first_solves)
      << "second batch saw counters leaked from the first";
  EXPECT_EQ(stats.pivots.load(), first_pivots);
}

// ---------------------------------------------------------------------------
// Lexer / parser hardening regressions (fuzz findings stay fixed).

TEST(LexerHardeningTest, NonAsciiByteReportedAsHexEscape) {
  Result<NamedSchema> parsed = ParseSchema("schema X { class A\xff; }");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("\\xff"), std::string::npos)
      << parsed.status();
}

TEST(LexerHardeningTest, PrintableByteReportedVerbatim) {
  Result<NamedSchema> parsed = ParseSchema("schema X { class A? }");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("'?'"), std::string::npos)
      << parsed.status();
}

TEST(LexerHardeningTest, UnterminatedSchemaFailsAtEndOfInput) {
  Result<NamedSchema> parsed = ParseSchema("schema X { class A");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("end of input"),
            std::string::npos)
      << parsed.status();
}

TEST(LexerHardeningTest, OverlongNumberRejectedWithoutOverflow) {
  Result<NamedSchema> parsed = ParseSchema(
      "schema X { class A; relationship R(U1: A); "
      "card A in R.U1 = (1, 99999999999999999999999999); }");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("out of range"),
            std::string::npos)
      << parsed.status();
}

TEST(LexerHardeningTest, TokenCursorNeverAdvancesPastEnd) {
  using internal_text::Lexer;
  using internal_text::Token;
  using internal_text::TokenCursor;
  using internal_text::TokenKind;

  std::vector<Token> tokens = Lexer("a b").Tokenize().value();
  TokenCursor cursor(std::move(tokens));
  for (int i = 0; i < 10; ++i) {
    cursor.Consume();  // Far past the two identifiers.
  }
  EXPECT_EQ(cursor.Current().kind, TokenKind::kEnd);
  // Expect* at end-of-input keep failing cleanly instead of walking off.
  EXPECT_FALSE(cursor.ExpectIdentifier("an identifier").ok());
  EXPECT_FALSE(cursor.ExpectNumber("a number").ok());
  EXPECT_FALSE(cursor.ExpectPunct(";").ok());
}

TEST(LexerHardeningTest, EmptyTokenCursorActsAsEndOfInput) {
  using internal_text::Token;
  using internal_text::TokenCursor;
  using internal_text::TokenKind;
  TokenCursor cursor((std::vector<Token>()));
  EXPECT_EQ(cursor.Current().kind, TokenKind::kEnd);
  cursor.Consume();
  EXPECT_EQ(cursor.Current().kind, TokenKind::kEnd);
}

}  // namespace
}  // namespace crsat
