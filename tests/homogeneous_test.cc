#include "src/lp/homogeneous.h"

#include <gtest/gtest.h>

#include "src/lp/fourier_motzkin.h"

namespace crsat {
namespace {

LinearExpr Expr(std::vector<std::pair<VarId, std::int64_t>> terms) {
  LinearExpr expr;
  for (const auto& [var, coeff] : terms) {
    expr.AddTerm(var, Rational(coeff));
  }
  return expr;
}

TEST(HomogeneousTest, StrictFeasibleConeSolved) {
  // 2c <= h <= 3c, c > 0.
  LinearSystem system;
  VarId c = system.AddVariable("c");
  VarId h = system.AddVariable("h");
  system.AddGe(Expr({{h, 1}, {c, -2}}));
  system.AddGe(Expr({{c, 3}, {h, -1}}));
  system.AddGt(Expr({{c, 1}}));
  LpResult result = SolveHomogeneousWithStrict(system).value();
  ASSERT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_TRUE(system.IsSatisfiedBy(result.values));
}

TEST(HomogeneousTest, StrictInfeasibleConeDetected) {
  // h >= 4c and h <= 3c force c = 0, contradicting c > 0.
  LinearSystem system;
  VarId c = system.AddVariable("c");
  VarId h = system.AddVariable("h");
  system.AddGe(Expr({{h, 1}, {c, -4}}));
  system.AddGe(Expr({{c, 3}, {h, -1}}));
  system.AddGt(Expr({{c, 1}}));
  LpResult result = SolveHomogeneousWithStrict(system).value();
  EXPECT_EQ(result.outcome, LpOutcome::kInfeasible);
}

TEST(HomogeneousTest, MultipleStrictConstraintsSimultaneously) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  VarId y = system.AddVariable("y");
  system.AddEq(Expr({{x, 1}, {y, -2}}));  // x == 2y.
  system.AddGt(Expr({{x, 1}}));
  system.AddGt(Expr({{y, 1}}));
  LpResult result = SolveHomogeneousWithStrict(system).value();
  ASSERT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_TRUE(system.IsSatisfiedBy(result.values));
}

TEST(HomogeneousTest, RejectsInhomogeneousSystems) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  LinearExpr expr = LinearExpr::Var(x);
  expr.AddConstant(Rational(-1));
  system.AddGe(expr);
  EXPECT_FALSE(SolveHomogeneousWithStrict(system).ok());
}

TEST(HomogeneousTest, AgreesWithFourierMotzkinOnStrictSystems) {
  // FM handles strict constraints natively; the >=1 reduction must agree.
  for (int a = 1; a <= 4; ++a) {
    for (int b = 1; b <= 4; ++b) {
      LinearSystem system;
      VarId c = system.AddVariable("c");
      VarId h = system.AddVariable("h");
      system.AddGe(Expr({{h, 1}, {c, -a}}));  // h >= a*c.
      system.AddGe(Expr({{c, b}, {h, -1}}));  // h <= b*c.
      system.AddGt(Expr({{c, 1}}));
      LpResult lp = SolveHomogeneousWithStrict(system).value();
      FmResult fm = FourierMotzkinSolver::Solve(system).value();
      EXPECT_EQ(lp.outcome == LpOutcome::kOptimal, fm.feasible)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(HomogeneousTest, ScaleToIntegerSolutionClearsDenominators) {
  std::vector<Rational> values = {Rational(1, 2), Rational(1, 3),
                                  Rational(0)};
  std::vector<BigInt> scaled = ScaleToIntegerSolution(values);
  EXPECT_EQ(scaled[0], BigInt(3));
  EXPECT_EQ(scaled[1], BigInt(2));
  EXPECT_EQ(scaled[2], BigInt(0));
}

TEST(HomogeneousTest, ScaleToIntegerSolutionReducesByGcd) {
  std::vector<Rational> values = {Rational(4), Rational(6)};
  std::vector<BigInt> scaled = ScaleToIntegerSolution(values);
  EXPECT_EQ(scaled[0], BigInt(2));
  EXPECT_EQ(scaled[1], BigInt(3));
}

TEST(HomogeneousTest, ScaleToIntegerSolutionAllZeros) {
  std::vector<Rational> values = {Rational(0), Rational(0)};
  std::vector<BigInt> scaled = ScaleToIntegerSolution(values);
  EXPECT_EQ(scaled[0], BigInt(0));
  EXPECT_EQ(scaled[1], BigInt(0));
}

TEST(HomogeneousTest, ScaleSolutionMultiplies) {
  std::vector<BigInt> values = {BigInt(1), BigInt(3)};
  std::vector<BigInt> doubled = ScaleSolution(values, BigInt(2));
  EXPECT_EQ(doubled[0], BigInt(2));
  EXPECT_EQ(doubled[1], BigInt(6));
}

TEST(HomogeneousTest, MaximalSupportFindsAllPositivableVariables) {
  // x == 2y couples x and y; z independent; w forced zero by w <= 0.
  LinearSystem system;
  VarId x = system.AddVariable("x");
  VarId y = system.AddVariable("y");
  VarId z = system.AddVariable("z");
  VarId w = system.AddVariable("w");
  system.AddEq(Expr({{x, 1}, {y, -2}}));
  system.AddLe(Expr({{w, 1}}));
  SupportResult support = ComputeMaximalSupport(
                              system, std::vector<bool>(4, false))
                              .value();
  EXPECT_TRUE(support.positive[x]);
  EXPECT_TRUE(support.positive[y]);
  EXPECT_TRUE(support.positive[z]);
  EXPECT_FALSE(support.positive[w]);
  EXPECT_TRUE(system.IsSatisfiedBy(support.witness));
  EXPECT_TRUE(support.witness[x].IsPositive());
  EXPECT_TRUE(support.witness[z].IsPositive());
  EXPECT_TRUE(support.witness[w].IsZero());
}

TEST(HomogeneousTest, MaximalSupportHonorsForcedZeros) {
  // Pinning y forces x through x == 2y.
  LinearSystem system;
  VarId x = system.AddVariable("x");
  VarId y = system.AddVariable("y");
  system.AddEq(Expr({{x, 1}, {y, -2}}));
  std::vector<bool> forced = {false, true};
  SupportResult support = ComputeMaximalSupport(system, forced).value();
  EXPECT_FALSE(support.positive[x]);
  EXPECT_FALSE(support.positive[y]);
}

TEST(HomogeneousTest, MaximalSupportRejectsStrictOrInhomogeneous) {
  LinearSystem strict;
  VarId x = strict.AddVariable("x");
  strict.AddGt(LinearExpr::Var(x));
  EXPECT_FALSE(ComputeMaximalSupport(strict, {false}).ok());

  LinearSystem inhomogeneous;
  VarId y = inhomogeneous.AddVariable("y");
  LinearExpr expr = LinearExpr::Var(y);
  expr.AddConstant(Rational(1));
  inhomogeneous.AddGe(expr);
  EXPECT_FALSE(ComputeMaximalSupport(inhomogeneous, {false}).ok());

  LinearSystem fine;
  fine.AddVariable("z");
  EXPECT_FALSE(ComputeMaximalSupport(fine, {false, false}).ok());  // Size.
}

}  // namespace
}  // namespace crsat
