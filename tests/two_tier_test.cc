// Tests for the two-tier simplex arithmetic (int64 fast path with exact
// fallback), the `SmallRational` scalar, warm starts, and the atomic
// `SimplexStats` counters.

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/lp/simplex.h"
#include "src/lp/small_rational.h"

namespace crsat {
namespace {

LinearExpr Expr(std::vector<std::pair<VarId, std::int64_t>> terms,
                std::int64_t constant = 0) {
  LinearExpr expr;
  for (const auto& [var, coeff] : terms) {
    expr.AddTerm(var, Rational(coeff));
  }
  expr.AddConstant(Rational(constant));
  return expr;
}

TEST(SmallRationalTest, ArithmeticMatchesRationalSemantics) {
  SmallRational::ClearOverflow();
  SmallRational a = SmallRational::FromReduced(1, 3);
  SmallRational b = SmallRational::FromReduced(1, 6);
  EXPECT_EQ(a + b, SmallRational::FromReduced(1, 2));
  EXPECT_EQ(a - b, SmallRational::FromReduced(1, 6));
  EXPECT_EQ(a * b, SmallRational::FromReduced(1, 18));
  EXPECT_EQ(a / b, SmallRational(2));
  EXPECT_EQ(-a, SmallRational::FromReduced(-1, 3));
  EXPECT_TRUE(a > b);
  EXPECT_TRUE(b < a);
  EXPECT_TRUE(SmallRational().IsZero());
  EXPECT_FALSE(SmallRational::OverflowSeen());
}

TEST(SmallRationalTest, KeepsCanonicalForm) {
  SmallRational::ClearOverflow();
  // 4/8 reduces to 1/2; negative denominators normalize on division.
  SmallRational half = SmallRational::FromReduced(1, 2);
  EXPECT_EQ(SmallRational(4) / SmallRational(8), half);
  SmallRational negative = SmallRational(1) / SmallRational(-2);
  EXPECT_EQ(negative.numerator(), -1);
  EXPECT_EQ(negative.denominator(), 2);
  EXPECT_FALSE(SmallRational::OverflowSeen());
}

TEST(SmallRationalTest, OverflowRaisesStickyFlag) {
  SmallRational::ClearOverflow();
  SmallRational huge(INT64_MAX);
  SmallRational result = huge * huge;  // ~2^126, cannot fit.
  (void)result;
  EXPECT_TRUE(SmallRational::OverflowSeen());
  // Sticky: survives subsequent in-range operations.
  SmallRational ok = SmallRational(2) + SmallRational(3);
  EXPECT_EQ(ok, SmallRational(5));
  EXPECT_TRUE(SmallRational::OverflowSeen());
  SmallRational::ClearOverflow();
  EXPECT_FALSE(SmallRational::OverflowSeen());
}

TEST(SmallRationalTest, NearOverflowAdditionFlagsExactly) {
  SmallRational::ClearOverflow();
  SmallRational max(INT64_MAX);
  SmallRational one(1);
  (void)(max + one);
  EXPECT_TRUE(SmallRational::OverflowSeen());
  SmallRational::ClearOverflow();
  // Same magnitudes, but the result reduces back into range: (max/2) * 2.
  SmallRational halfish = SmallRational::FromReduced(INT64_MAX, 2);
  EXPECT_EQ(halfish * SmallRational(2), SmallRational(INT64_MAX));
  EXPECT_FALSE(SmallRational::OverflowSeen());
}

// --- Cross-tier equivalence -------------------------------------------

// Generates a random system with small integer coefficients. Feasible and
// infeasible instances both occur.
LinearSystem RandomSystem(std::mt19937* rng, int num_vars, int num_rows) {
  std::uniform_int_distribution<int> coeff(-4, 4);
  std::uniform_int_distribution<int> rhs(-6, 6);
  std::uniform_int_distribution<int> sense(0, 2);
  LinearSystem system;
  for (int v = 0; v < num_vars; ++v) {
    system.AddVariable("x" + std::to_string(v));
  }
  for (int r = 0; r < num_rows; ++r) {
    LinearExpr expr;
    for (int v = 0; v < num_vars; ++v) {
      expr.AddTerm(v, Rational(coeff(*rng)));
    }
    expr.AddConstant(Rational(rhs(*rng)));
    switch (sense(*rng)) {
      case 0:
        system.AddLe(std::move(expr));
        break;
      case 1:
        system.AddGe(std::move(expr));
        break;
      default:
        system.AddEq(std::move(expr));
        break;
    }
  }
  return system;
}

class TwoTierPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TwoTierPropertyTest, TiersAgreeOnRandomSystems) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int instance = 0; instance < 40; ++instance) {
    LinearSystem system = RandomSystem(&rng, 4, 5);
    LinearExpr objective;
    for (int v = 0; v < 4; ++v) {
      objective.AddTerm(v, Rational((instance + v) % 3 - 1));
    }
    SimplexOptions two_tier;
    two_tier.tier = SimplexOptions::Tier::kTwoTier;
    SimplexOptions exact;
    exact.tier = SimplexOptions::Tier::kExactOnly;
    LpResult fast =
        SimplexSolver::SolveWith(system, objective, /*maximize=*/false,
                                 two_tier)
            .value();
    LpResult reference =
        SimplexSolver::SolveWith(system, objective, /*maximize=*/false, exact)
            .value();
    ASSERT_EQ(fast.outcome, reference.outcome) << "instance " << instance;
    if (fast.outcome == LpOutcome::kOptimal) {
      // Objective values must agree exactly; both tiers are exact. (The
      // argmin vertex is also identical because the fast tier performs the
      // same pivot sequence, but the objective is the contract.)
      EXPECT_EQ(fast.objective, reference.objective) << "instance "
                                                     << instance;
      EXPECT_EQ(fast.values, reference.values) << "instance " << instance;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoTierPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(TwoTierTest, BigCoefficientsFallBackAndStayExact) {
  // Coefficients chosen so fast-tier pivoting overflows: products of
  // ~2^62 numerators leave int64 after one elimination step.
  const std::int64_t big = std::int64_t{1} << 62;
  LinearSystem system;
  VarId x = system.AddVariable("x");
  VarId y = system.AddVariable("y");
  LinearExpr row1;
  row1.AddTerm(x, Rational(BigInt(big)));
  row1.AddTerm(y, Rational(BigInt(big - 1)));
  row1.AddConstant(Rational(BigInt(-big)));
  system.AddLe(std::move(row1));
  LinearExpr row2;
  row2.AddTerm(x, Rational(BigInt(big - 3)));
  row2.AddTerm(y, Rational(BigInt(big - 5)));
  row2.AddConstant(Rational(BigInt(-big + 4)));
  system.AddGe(std::move(row2));

  GetSimplexStats().Reset();
  LpResult two_tier =
      SimplexSolver::SolveWith(system, Expr({{x, 1}, {y, 1}}),
                               /*maximize=*/false, SimplexOptions())
          .value();
  SimplexOptions exact;
  exact.tier = SimplexOptions::Tier::kExactOnly;
  LpResult reference =
      SimplexSolver::SolveWith(system, Expr({{x, 1}, {y, 1}}),
                               /*maximize=*/false, exact)
          .value();
  EXPECT_EQ(two_tier.outcome, reference.outcome);
  if (two_tier.outcome == LpOutcome::kOptimal) {
    EXPECT_EQ(two_tier.objective, reference.objective);
    EXPECT_EQ(two_tier.values, reference.values);
  }
  // The first solve must have abandoned the fast tier.
  EXPECT_GE(GetSimplexStats().tier_fallbacks.load(), 1u);
  EXPECT_EQ(GetSimplexStats().fast_solves.load(), 0u);
}

TEST(TwoTierTest, UnrepresentableInputFallsBackBeforePivoting) {
  // A coefficient that does not even fit int64 forces the fallback at
  // tableau-construction time.
  BigInt huge(1);
  for (int i = 0; i < 5; ++i) {
    huge = huge * BigInt(INT64_MAX);
  }
  LinearSystem system;
  VarId x = system.AddVariable("x");
  LinearExpr row;
  row.AddTerm(x, Rational(huge));
  row.AddConstant(Rational(-1));
  system.AddGe(std::move(row));
  GetSimplexStats().Reset();
  LpResult result = SimplexSolver::CheckFeasibility(system).value();
  EXPECT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(GetSimplexStats().tier_fallbacks.load(), 1u);
}

TEST(TwoTierTest, StatsResetZeroesEverything) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  system.AddLe(Expr({{x, 1}}, -3));
  (void)SimplexSolver::Solve(system, Expr({{x, 1}}), /*maximize=*/true)
      .value();
  SimplexStats& stats = GetSimplexStats();
  EXPECT_GT(stats.solves.load(), 0u);
  stats.Reset();
  EXPECT_EQ(stats.solves.load(), 0u);
  EXPECT_EQ(stats.pivots.load(), 0u);
  EXPECT_EQ(stats.phase1_pivots.load(), 0u);
  EXPECT_EQ(stats.fast_solves.load(), 0u);
  EXPECT_EQ(stats.fast_pivots.load(), 0u);
  EXPECT_EQ(stats.tier_fallbacks.load(), 0u);
  EXPECT_EQ(stats.warm_start_hits.load(), 0u);
  EXPECT_EQ(stats.warm_start_misses.load(), 0u);
}

// --- Warm starts -------------------------------------------------------

TEST(WarmStartTest, SecondSolveSkipsPhase1) {
  // Two solves of the same system: the second reuses the first's basis.
  LinearSystem system;
  VarId x = system.AddVariable("x");
  VarId y = system.AddVariable("y");
  system.AddGe(Expr({{x, 1}, {y, 1}}, -4));
  system.AddLe(Expr({{x, 1}}, -10));
  LinearExpr objective = Expr({{x, 2}, {y, 3}});

  WarmStartBasis basis;
  SimplexOptions first;
  first.export_basis = &basis;
  LpResult cold =
      SimplexSolver::SolveWith(system, objective, /*maximize=*/false, first)
          .value();
  ASSERT_EQ(cold.outcome, LpOutcome::kOptimal);
  ASSERT_FALSE(basis.empty());

  GetSimplexStats().Reset();
  SimplexOptions second;
  second.warm_start = &basis;
  LpResult warm =
      SimplexSolver::SolveWith(system, objective, /*maximize=*/false, second)
          .value();
  ASSERT_EQ(warm.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(warm.objective, cold.objective);
  EXPECT_EQ(warm.values, cold.values);
  EXPECT_EQ(GetSimplexStats().warm_start_hits.load(), 1u);
  EXPECT_EQ(GetSimplexStats().phase1_pivots.load(), 0u);
}

TEST(WarmStartTest, PerturbedCoefficientsStillVerifyFeasibility) {
  // Same shape, one changed coefficient — the carried basis either remains
  // feasible (hit) or is rejected (miss); the answer must be exact either
  // way.
  for (std::int64_t bound : {4, 5, 6, 50}) {
    LinearSystem base;
    VarId x = base.AddVariable("x");
    VarId y = base.AddVariable("y");
    base.AddGe(Expr({{x, 1}, {y, 1}}, -bound));
    base.AddLe(Expr({{x, 1}, {y, 2}}, -100));
    WarmStartBasis basis;
    SimplexOptions exporting;
    exporting.export_basis = &basis;
    LpResult first = SimplexSolver::SolveWith(base, Expr({{x, 1}}),
                                              /*maximize=*/false, exporting)
                         .value();
    ASSERT_EQ(first.outcome, LpOutcome::kOptimal);

    LinearSystem changed;
    VarId cx = changed.AddVariable("x");
    VarId cy = changed.AddVariable("y");
    changed.AddGe(Expr({{cx, 1}, {cy, 1}}, -(bound + 1)));
    changed.AddLe(Expr({{cx, 1}, {cy, 2}}, -100));
    SimplexOptions warm;
    warm.warm_start = &basis;
    LpResult with_warm = SimplexSolver::SolveWith(changed, Expr({{cx, 1}}),
                                                  /*maximize=*/false, warm)
                             .value();
    LpResult without =
        SimplexSolver::Solve(changed, Expr({{cx, 1}}), /*maximize=*/false)
            .value();
    EXPECT_EQ(with_warm.outcome, without.outcome) << "bound " << bound;
    EXPECT_EQ(with_warm.objective, without.objective) << "bound " << bound;
  }
}

TEST(WarmStartTest, MismatchedShapeIsRejectedNotWrong) {
  LinearSystem small;
  VarId x = small.AddVariable("x");
  small.AddLe(Expr({{x, 1}}, -1));
  WarmStartBasis basis;
  SimplexOptions exporting;
  exporting.export_basis = &basis;
  (void)SimplexSolver::SolveWith(small, Expr({{x, 1}}), /*maximize=*/true,
                                 exporting)
      .value();
  ASSERT_FALSE(basis.empty());

  LinearSystem larger;
  VarId a = larger.AddVariable("a");
  VarId b = larger.AddVariable("b");
  larger.AddLe(Expr({{a, 1}, {b, 1}}, -2));
  larger.AddGe(Expr({{a, 1}}, -1));
  GetSimplexStats().Reset();
  SimplexOptions warm;
  warm.warm_start = &basis;
  LpResult result = SimplexSolver::SolveWith(larger, Expr({{a, 1}, {b, 1}}),
                                             /*maximize=*/true, warm)
                        .value();
  EXPECT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(result.objective, Rational(2));
  EXPECT_EQ(GetSimplexStats().warm_start_hits.load(), 0u);
  EXPECT_GE(GetSimplexStats().warm_start_misses.load(), 1u);
}

TEST(WarmStartTest, RandomSystemsWarmRestartsMatchColdSolves) {
  std::mt19937 rng(99);
  for (int instance = 0; instance < 30; ++instance) {
    LinearSystem system = RandomSystem(&rng, 3, 4);
    LinearExpr objective = Expr({{0, 1}, {1, -1}, {2, 1}});
    WarmStartBasis basis;
    SimplexOptions exporting;
    exporting.export_basis = &basis;
    LpResult cold = SimplexSolver::SolveWith(system, objective,
                                             /*maximize=*/false, exporting)
                        .value();
    if (cold.outcome != LpOutcome::kOptimal || basis.empty()) {
      continue;
    }
    SimplexOptions warm;
    warm.warm_start = &basis;
    LpResult restarted = SimplexSolver::SolveWith(system, objective,
                                                  /*maximize=*/false, warm)
                             .value();
    ASSERT_EQ(restarted.outcome, LpOutcome::kOptimal) << "instance "
                                                      << instance;
    EXPECT_EQ(restarted.objective, cold.objective) << "instance " << instance;
  }
}

}  // namespace
}  // namespace crsat
