#include <sstream>

#include <gtest/gtest.h>

#include "src/base/result.h"
#include "src/base/status.h"
#include "src/base/string_util.h"
#include "src/cr/ids.h"

namespace crsat {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_TRUE(OkStatus().ok());
}

TEST(StatusTest, ErrorFactoriesSetCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(ParseError("x").code(), StatusCode::kParseError);
  Status status = InvalidArgumentError("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << NotFoundError("missing");
  EXPECT_EQ(os.str(), "NotFound: missing");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return InternalError("boom"); };
  auto passes = []() -> Status { return OkStatus(); };
  auto wrapper = [&](bool fail) -> Status {
    CRSAT_RETURN_IF_ERROR(passes());
    if (fail) {
      CRSAT_RETURN_IF_ERROR(fails());
    }
    return OkStatus();
  };
  EXPECT_TRUE(wrapper(false).ok());
  EXPECT_EQ(wrapper(true).code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(NotFoundError("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto source = [](bool ok) -> Result<int> {
    if (ok) {
      return 7;
    }
    return UnavailableError("later");
  };
  auto wrapper = [&](bool ok) -> Result<int> {
    CRSAT_ASSIGN_OR_RETURN(int value, source(ok));
    return value * 2;
  };
  EXPECT_EQ(wrapper(true).value(), 14);
  EXPECT_EQ(wrapper(false).status().code(), StatusCode::kUnavailable);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"a", "", "c"}, "-"), "a--c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("\t\n hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_TRUE(StartsWith("hello", "hello"));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_FALSE(StartsWith("hello", "el"));
}

TEST(IdsTest, DefaultIsInvalid) {
  ClassId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value, -1);
  EXPECT_TRUE(ClassId(0).valid());
}

TEST(IdsTest, ComparisonAndHash) {
  ClassId a(1);
  ClassId b(1);
  ClassId c(2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(std::hash<ClassId>()(a), std::hash<ClassId>()(b));
}

TEST(IdsTest, DistinctTagTypesDoNotMix) {
  // Compile-time property: ClassId and RoleId are different types. This
  // test documents it; the static_assert is the actual check.
  static_assert(!std::is_same_v<ClassId, RoleId>);
  static_assert(!std::is_same_v<ClassId, RelationshipId>);
  SUCCEED();
}

TEST(IdsTest, StreamInsertion) {
  std::ostringstream os;
  os << ClassId(5);
  EXPECT_EQ(os.str(), "5");
}

}  // namespace
}  // namespace crsat
