#include "src/lp/fourier_motzkin.h"

#include <gtest/gtest.h>

#include "src/base/resource_guard.h"

namespace crsat {
namespace {

LinearExpr Expr(std::vector<std::pair<VarId, std::int64_t>> terms,
                std::int64_t constant = 0) {
  LinearExpr expr;
  for (const auto& [var, coeff] : terms) {
    expr.AddTerm(var, Rational(coeff));
  }
  expr.AddConstant(Rational(constant));
  return expr;
}

TEST(FourierMotzkinTest, EmptySystemFeasible) {
  LinearSystem system;
  FmResult result = FourierMotzkinSolver::Solve(system).value();
  EXPECT_TRUE(result.feasible);
}

TEST(FourierMotzkinTest, SimpleBoundsFeasibleWithWitness) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  system.AddGe(Expr({{x, 1}}, -2));  // x >= 2.
  system.AddLe(Expr({{x, 1}}, -5));  // x <= 5.
  FmResult result = FourierMotzkinSolver::Solve(system).value();
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(system.IsSatisfiedBy(result.witness));
}

TEST(FourierMotzkinTest, ContradictoryBoundsInfeasible) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  system.AddGe(Expr({{x, 1}}, -5));  // x >= 5.
  system.AddLe(Expr({{x, 1}}, -2));  // x <= 2.
  FmResult result = FourierMotzkinSolver::Solve(system).value();
  EXPECT_FALSE(result.feasible);
}

TEST(FourierMotzkinTest, StrictConstraintSatisfiable) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  system.AddGt(Expr({{x, 1}}));  // x > 0.
  FmResult result = FourierMotzkinSolver::Solve(system).value();
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.witness[x].IsPositive());
}

TEST(FourierMotzkinTest, StrictVersusNonStrictBoundary) {
  // x >= 1 and x <= 1 is feasible; adding x > 1 makes it infeasible.
  LinearSystem system;
  VarId x = system.AddVariable("x");
  system.AddGe(Expr({{x, 1}}, -1));
  system.AddLe(Expr({{x, 1}}, -1));
  EXPECT_TRUE(FourierMotzkinSolver::Solve(system).value().feasible);
  system.AddGt(Expr({{x, 1}}, -1));
  EXPECT_FALSE(FourierMotzkinSolver::Solve(system).value().feasible);
}

TEST(FourierMotzkinTest, StrictInequalityChainInfeasible) {
  // x > y, y > x.
  LinearSystem system;
  VarId x = system.AddVariable("x", /*nonnegative=*/false);
  VarId y = system.AddVariable("y", /*nonnegative=*/false);
  system.AddGt(Expr({{x, 1}, {y, -1}}));
  system.AddGt(Expr({{y, 1}, {x, -1}}));
  EXPECT_FALSE(FourierMotzkinSolver::Solve(system).value().feasible);
}

TEST(FourierMotzkinTest, EqualityConstraintsHandled) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  VarId y = system.AddVariable("y");
  system.AddEq(Expr({{x, 1}, {y, 1}}, -10));
  system.AddEq(Expr({{x, 1}, {y, -1}}, -4));
  FmResult result = FourierMotzkinSolver::Solve(system).value();
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.witness[x], Rational(7));
  EXPECT_EQ(result.witness[y], Rational(3));
}

TEST(FourierMotzkinTest, NonnegativityFlagsHonored) {
  LinearSystem nonneg;
  VarId x = nonneg.AddVariable("x");  // Nonnegative.
  nonneg.AddLe(Expr({{x, 1}}, 3));    // x <= -3.
  EXPECT_FALSE(FourierMotzkinSolver::Solve(nonneg).value().feasible);

  LinearSystem free_var;
  VarId y = free_var.AddVariable("y", /*nonnegative=*/false);
  free_var.AddLe(Expr({{y, 1}}, 3));  // y <= -3.
  FmResult result = FourierMotzkinSolver::Solve(free_var).value();
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(free_var.IsSatisfiedBy(result.witness));
}

TEST(FourierMotzkinTest, ChainedVariablesBackSubstituteCorrectly) {
  // x0 <= x1 <= x2 <= 10, x0 >= 4.
  LinearSystem system;
  VarId x0 = system.AddVariable("x0");
  VarId x1 = system.AddVariable("x1");
  VarId x2 = system.AddVariable("x2");
  system.AddGe(Expr({{x1, 1}, {x0, -1}}));
  system.AddGe(Expr({{x2, 1}, {x1, -1}}));
  system.AddLe(Expr({{x2, 1}}, -10));
  system.AddGe(Expr({{x0, 1}}, -4));
  FmResult result = FourierMotzkinSolver::Solve(system).value();
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(system.IsSatisfiedBy(result.witness));
}

TEST(FourierMotzkinTest, HomogeneousStrictConicSystem) {
  // The shape produced by the reasoner: 2c <= h, h <= 3c, c > 0.
  LinearSystem system;
  VarId c = system.AddVariable("c");
  VarId h = system.AddVariable("h");
  system.AddGe(Expr({{h, 1}, {c, -2}}));
  system.AddGe(Expr({{c, 3}, {h, -1}}));
  system.AddGt(Expr({{c, 1}}));
  FmResult result = FourierMotzkinSolver::Solve(system).value();
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(system.IsSatisfiedBy(result.witness));

  // Tightening to 4c <= h <= 3c with c > 0 is infeasible.
  LinearSystem tight;
  VarId c2 = tight.AddVariable("c");
  VarId h2 = tight.AddVariable("h");
  tight.AddGe(Expr({{h2, 1}, {c2, -4}}));
  tight.AddGe(Expr({{c2, 3}, {h2, -1}}));
  tight.AddGt(Expr({{c2, 1}}));
  EXPECT_FALSE(FourierMotzkinSolver::Solve(tight).value().feasible);
}

TEST(FourierMotzkinTest, CancelledGuardUnwindsBeforeEliminating) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  VarId y = system.AddVariable("y");
  system.AddGe(Expr({{x, 1}, {y, 1}}, -1));
  system.AddGe(Expr({{x, -1}, {y, 1}}, 3));

  // Same system solves fine with a live guard...
  ResourceGuard live;
  EXPECT_TRUE(FourierMotzkinSolver::Solve(system, &live).ok());

  // ...and unwinds with kCancelled (not a wrong verdict) once cancelled:
  // elimination polls the guard per variable via CheckNow.
  ResourceGuard cancelled;
  cancelled.RequestCancel();
  Result<FmResult> result = FourierMotzkinSolver::Solve(system, &cancelled);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.report().site, "fm/eliminate");
}

}  // namespace
}  // namespace crsat
