#ifndef CRSAT_TESTS_TEST_SCHEMAS_H_
#define CRSAT_TESTS_TEST_SCHEMAS_H_

#include "src/cr/schema.h"

namespace crsat {
namespace testing {

/// The paper's running example (Figures 2 and 3): a meeting with talks,
/// speakers, and discussants.
///
///   class Speaker, Discussant, Talk;
///   isa Discussant < Speaker;
///   relationship Holds(U1: Speaker, U2: Talk);
///   relationship Participates(U3: Discussant, U4: Talk);
///   card Speaker    in Holds.U1        = (1, *);
///   card Discussant in Holds.U1        = (0, 2);   // refinement
///   card Talk       in Holds.U2        = (1, 1);
///   card Discussant in Participates.U3 = (1, 1);
///   card Talk       in Participates.U4 = (1, *);
inline Schema MeetingSchema() {
  SchemaBuilder builder;
  builder.AddClass("Speaker");
  builder.AddClass("Discussant");
  builder.AddClass("Talk");
  builder.AddIsa("Discussant", "Speaker");
  builder.AddRelationship("Holds", {{"U1", "Speaker"}, {"U2", "Talk"}});
  builder.AddRelationship("Participates",
                          {{"U3", "Discussant"}, {"U4", "Talk"}});
  builder.SetCardinality("Speaker", "Holds", "U1", {1, std::nullopt});
  builder.SetCardinality("Discussant", "Holds", "U1", {0, 2});
  builder.SetCardinality("Talk", "Holds", "U2", {1, 1});
  builder.SetCardinality("Discussant", "Participates", "U3", {1, 1});
  builder.SetCardinality("Talk", "Participates", "U4", {1, std::nullopt});
  return builder.Build().value();
}

/// The meeting schema plus the Section 3.3 follow-up constraint
/// `minc(Discussant, Holds, U1) = 2`, which makes every class
/// unsatisfiable (the paper shows the system becomes unsolvable).
inline Schema MeetingSchemaWithEagerDiscussants() {
  SchemaBuilder builder;
  builder.AddClass("Speaker");
  builder.AddClass("Discussant");
  builder.AddClass("Talk");
  builder.AddIsa("Discussant", "Speaker");
  builder.AddRelationship("Holds", {{"U1", "Speaker"}, {"U2", "Talk"}});
  builder.AddRelationship("Participates",
                          {{"U3", "Discussant"}, {"U4", "Talk"}});
  builder.SetCardinality("Speaker", "Holds", "U1", {1, std::nullopt});
  builder.SetCardinality("Discussant", "Holds", "U1", {2, 2});
  builder.SetCardinality("Talk", "Holds", "U2", {1, 1});
  builder.SetCardinality("Discussant", "Participates", "U3", {1, 1});
  builder.SetCardinality("Talk", "Participates", "U4", {1, std::nullopt});
  return builder.Build().value();
}

/// The paper's Figure 1: a finitely unsatisfiable ER diagram. The
/// cardinalities force |tuples| >= 2|C| and |tuples| <= |D|, while
/// `D <= C` forces |D| <= |C|; so both classes are empty in every finite
/// model.
inline Schema Figure1Schema() {
  SchemaBuilder builder;
  builder.AddClass("C");
  builder.AddClass("D");
  builder.AddIsa("D", "C");
  builder.AddRelationship("R", {{"V1", "C"}, {"V2", "D"}});
  builder.SetCardinality("C", "R", "V1", {2, std::nullopt});
  builder.SetCardinality("D", "R", "V2", {0, 1});
  return builder.Build().value();
}

/// An ISA-free schema in the Lenzerini-Nobili fragment: employees work in
/// departments; every employee works in exactly one department and every
/// department has at least three employees.
inline Schema EmploymentSchema() {
  SchemaBuilder builder;
  builder.AddClass("Employee");
  builder.AddClass("Department");
  builder.AddRelationship("WorksIn", {{"W1", "Employee"}, {"W2", "Department"}});
  builder.SetCardinality("Employee", "WorksIn", "W1", {1, 1});
  builder.SetCardinality("Department", "WorksIn", "W2", {3, std::nullopt});
  return builder.Build().value();
}

/// An ISA-free unsatisfiable-class schema: every A pairs with exactly two
/// B's, every B with exactly one A, but every B also pairs with at least
/// three A's in a second relationship capped at one per A.
inline Schema IsaFreeUnsatSchema() {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddRelationship("R1", {{"X1", "A"}, {"X2", "B"}});
  builder.AddRelationship("R2", {{"Y1", "A"}, {"Y2", "B"}});
  // R1 forces |B| = 2|A|; R2 forces |B| <= |A|/3.
  builder.SetCardinality("A", "R1", "X1", {2, 2});
  builder.SetCardinality("B", "R1", "X2", {1, 1});
  builder.SetCardinality("A", "R2", "Y1", {0, 1});
  builder.SetCardinality("B", "R2", "Y2", {3, std::nullopt});
  return builder.Build().value();
}

}  // namespace testing
}  // namespace crsat

#endif  // CRSAT_TESTS_TEST_SCHEMAS_H_
