// The witness subsystem (src/witness/): round-trip property sweep
// (synthesized witnesses certify against ModelChecker across thread
// counts), the UNSAT-never-invokes-synthesis guarantee, the forced
// exact-BigInt scaling fallback, resource-guard propagation into every
// stage, and the non-bypassable certification gate.

#include <gtest/gtest.h>

#include <atomic>
#include <tuple>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/cr/model_checker.h"
#include "src/cr/schema_text.h"
#include "src/generator/random_schema.h"
#include "src/lp/homogeneous.h"
#include "src/lp/simplex.h"
#include "src/reasoner/satisfiability.h"
#include "src/witness/integer_solution.h"
#include "src/witness/witness.h"
#include "src/witness/witness_text.h"

namespace crsat {
namespace {

std::uint64_t Load(const std::atomic<std::uint64_t>& counter) {
  return counter.load(std::memory_order_relaxed);
}

// Sweep: (seed, thread count). Every satisfiable generated schema's
// witness must certify — and its cardinalities must hold under direct
// recount — at 1, 2, and 8 reasoning threads.
class WitnessRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WitnessRoundTripTest, EverySatisfiableSchemaYieldsCertifiedWitness) {
  const int seed = std::get<0>(GetParam());
  const int threads = std::get<1>(GetParam());
  SetGlobalThreadCount(threads);

  RandomSchemaParams params;
  params.seed = static_cast<std::uint32_t>(seed) + 7000;
  params.num_classes = 5;
  params.num_relationships = 3;
  params.isa_density = 0.3;
  params.primary_card_probability = 0.7;
  params.refinement_probability = 0.4;
  Schema schema = GenerateRandomSchema(params).value();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  bool any_satisfiable = false;
  for (bool flag : satisfiable) {
    any_satisfiable = any_satisfiable || flag;
  }

  WitnessSynthesizer synthesizer(checker);
  WitnessOptions options;
  options.max_model_size = 2000000;

  if (!any_satisfiable) {
    // Nothing to witness: synthesis must refuse up front, without running
    // a single additional simplex solve (asserted separately below with a
    // deterministic schema; here just the refusal code).
    Result<CertifiedWitness> refused = synthesizer.Synthesize(options);
    ASSERT_FALSE(refused.ok()) << "seed " << params.seed;
    EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument)
        << "seed " << params.seed;
    return;
  }

  Result<CertifiedWitness> witness = synthesizer.Synthesize(options);
  ASSERT_TRUE(witness.ok()) << "seed " << params.seed << ", threads "
                            << threads << ": " << witness.status().message();
  const Interpretation& model = witness->interpretation();

  // Certification already ran inside Synthesize; re-assert independently.
  EXPECT_TRUE(ModelChecker::IsModel(schema, model)) << "seed " << params.seed;

  // satisfiable <=> populated, class by class.
  for (int c = 0; c < schema.num_classes(); ++c) {
    EXPECT_EQ(!model.ClassExtension(ClassId(c)).empty(),
              static_cast<bool>(satisfiable[c]))
        << "class " << schema.ClassName(ClassId(c)) << ", seed "
        << params.seed;
  }

  // Direct cardinality recount, independent of ModelChecker's internals.
  for (RelationshipId rel : schema.AllRelationships()) {
    const std::vector<RoleId>& roles = schema.RolesOf(rel);
    for (size_t k = 0; k < roles.size(); ++k) {
      ClassId primary = schema.PrimaryClass(roles[k]);
      for (ClassId cls : schema.SubclassesOf(primary)) {
        Cardinality cardinality = schema.GetCardinality(cls, rel, roles[k]);
        for (Individual individual : model.ClassExtension(cls)) {
          std::uint64_t count =
              model.CountTuplesAt(rel, static_cast<int>(k), individual);
          EXPECT_GE(count, cardinality.min) << "seed " << params.seed;
          if (cardinality.max.has_value()) {
            EXPECT_LE(count, *cardinality.max) << "seed " << params.seed;
          }
        }
      }
    }
  }

  // Stats describe the certified artifact.
  EXPECT_EQ(witness->stats().individuals,
            static_cast<std::uint64_t>(model.domain_size()));
  EXPECT_TRUE(witness->stats().integer_fast_path ||
              witness->stats().integer_exact_fallback);
}

INSTANTIATE_TEST_SUITE_P(SeedsByThreads, WitnessRoundTripTest,
                         ::testing::Combine(::testing::Range(0, 12),
                                            ::testing::Values(1, 2, 8)));

TEST(WitnessSynthesizerTest, UnsatSchemaNeverInvokesSolverForWitness) {
  // Every A appears in >= 2 tuples of R at U1, but R has at most |A|
  // tuples (each B at most once at U2, |B| <= |A| forced by nothing --
  // actually 2|A| <= |R| <= |A| directly): A is unsatisfiable.
  NamedSchema parsed = ParseSchema(R"(
    schema Unsat {
      class A;
      relationship R(U1: A, U2: A);
      card A in R.U1 = (2, *);
      card A in R.U2 = (0, 1);
    }
  )")
                           .value();
  Expansion expansion = Expansion::Build(parsed.schema).value();
  SatisfiabilityChecker checker(expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  ASSERT_FALSE(satisfiable[0]);

  // The verdict above did all the LP work the pipeline will ever do on
  // this schema: synthesis must refuse before any further solve.
  GetSimplexStats().Reset();
  WitnessSynthesizer synthesizer(checker);
  Result<CertifiedWitness> witness = synthesizer.Synthesize();
  ASSERT_FALSE(witness.ok());
  EXPECT_EQ(witness.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Load(GetSimplexStats().solves), 0u);
  EXPECT_EQ(Load(GetSimplexStats().pivots), 0u);
}

TEST(WitnessSynthesizerTest, RepeatedSynthesisReusesWarmStartBasis) {
  NamedSchema parsed = ParseSchema(R"(
    schema Meeting {
      class Speaker, Talk;
      relationship Holds(U1: Speaker, U2: Talk);
      card Speaker in Holds.U1 = (1, 2);
      card Talk in Holds.U2 = (1, 1);
    }
  )")
                           .value();
  Expansion expansion = Expansion::Build(parsed.schema).value();
  SatisfiabilityChecker checker(expansion);
  ASSERT_TRUE(checker.SatisfiableClasses().value()[0]);

  WitnessSynthesizer synthesizer(checker);
  ASSERT_TRUE(synthesizer.Synthesize().ok());
  // The first run exported the minimal-witness LP basis; the second must
  // at least attempt a warm start from it.
  GetSimplexStats().Reset();
  ASSERT_TRUE(synthesizer.Synthesize().ok());
  EXPECT_GE(Load(GetSimplexStats().warm_start_hits) +
                Load(GetSimplexStats().warm_start_misses),
            1u);
}

TEST(IntegerScaleTest, SmallDenominatorsStayOnFastPath) {
  std::vector<Rational> values = {Rational(1, 2), Rational(1, 3),
                                  Rational(5, 6)};
  IntegerScaleStats stats;
  std::vector<BigInt> integers = ScaleToIntegerSolution(values, &stats);
  EXPECT_TRUE(stats.used_fast_path);
  EXPECT_FALSE(stats.exact_fallback);
  ASSERT_EQ(integers.size(), 3u);
  EXPECT_EQ(integers[0], BigInt(3));
  EXPECT_EQ(integers[1], BigInt(2));
  EXPECT_EQ(integers[2], BigInt(5));
}

TEST(IntegerScaleTest, HugeDenominatorsForceExactFallback) {
  // Denominators 2^80 and 3^50: each alone exceeds int64, so the
  // SmallRational fast path cannot even represent the inputs and the
  // exact BigInt path must take over — and still produce the right
  // integers (2^80/gcd-reduced LCM arithmetic is exact).
  BigInt two_pow_80(1);
  for (int i = 0; i < 80; ++i) {
    two_pow_80 *= BigInt(2);
  }
  BigInt three_pow_50(1);
  for (int i = 0; i < 50; ++i) {
    three_pow_50 *= BigInt(3);
  }
  std::vector<Rational> values = {Rational(BigInt(1), two_pow_80),
                                  Rational(BigInt(1), three_pow_50)};
  IntegerScaleStats stats;
  std::vector<BigInt> integers = ScaleToIntegerSolution(values, &stats);
  EXPECT_FALSE(stats.used_fast_path);
  EXPECT_TRUE(stats.exact_fallback);
  ASSERT_EQ(integers.size(), 2u);
  // value[0] * LCM = LCM / 2^80 = 3^50; symmetrically for value[1].
  EXPECT_EQ(integers[0], three_pow_50);
  EXPECT_EQ(integers[1], two_pow_80);
}

TEST(WitnessGuardTest, DeadlineTripSurfacesAsResourceLimit) {
  NamedSchema parsed = ParseSchema(R"(
    schema Tiny {
      class A;
      relationship R(U1: A, U2: A);
      card A in R.U1 = (1, 2);
    }
  )")
                           .value();
  Expansion expansion = Expansion::Build(parsed.schema).value();
  SatisfiabilityChecker checker(expansion);
  ASSERT_TRUE(checker.SatisfiableClasses().value()[0]);

  ResourceLimits limits;
  limits.timeout = std::chrono::milliseconds(0);
  ResourceGuard guard(limits);
  WitnessSynthesizer synthesizer(checker);
  WitnessOptions options;
  options.guard = &guard;
  Result<CertifiedWitness> witness = synthesizer.Synthesize(options);
  ASSERT_FALSE(witness.ok());
  EXPECT_TRUE(IsResourceLimitStatus(witness.status().code()))
      << witness.status();
  EXPECT_TRUE(guard.tripped());
}

TEST(WitnessGuardTest, MemoryBudgetTripsDuringTupleAssignment) {
  // Satisfiability is trivial here, but the smallest witness has 40001
  // individuals and 40000 tuples; a 64 KiB budget cannot hold it.
  NamedSchema parsed = ParseSchema(R"(
    schema Heavy {
      class A, B;
      relationship R(U1: A, U2: B);
      card A in R.U1 = (40000, *);
      card B in R.U2 = (1, 1);
    }
  )")
                           .value();
  Expansion expansion = Expansion::Build(parsed.schema).value();
  SatisfiabilityChecker checker(expansion);
  ASSERT_TRUE(checker.SatisfiableClasses().value()[0]);

  ResourceLimits limits;
  limits.max_memory_bytes = 64 * 1024;
  ResourceGuard guard(limits);
  WitnessSynthesizer synthesizer(checker);
  WitnessOptions options;
  options.guard = &guard;
  Result<CertifiedWitness> witness = synthesizer.Synthesize(options);
  ASSERT_FALSE(witness.ok());
  EXPECT_EQ(witness.status().code(), StatusCode::kResourceExhausted)
      << witness.status();
  // Without a guard the same synthesis succeeds, proving the trip (and
  // not some latent failure) is what stopped it.
  Result<CertifiedWitness> unguarded = synthesizer.Synthesize();
  ASSERT_TRUE(unguarded.ok()) << unguarded.status();
  // The maximal acceptable support populates every consistent compound
  // variant of R, each at the 40000-tuple minimum.
  EXPECT_GE(unguarded->stats().tuples, 40000u);
}

TEST(CertifyTest, RefusesInterpretationsThatAreNotModels) {
  NamedSchema parsed = ParseSchema(R"(
    schema S {
      class Sub, Super;
      isa Sub < Super;
    }
  )")
                           .value();
  Interpretation broken(parsed.schema);
  Individual d = broken.AddIndividual();
  // In Sub but not Super: an ISA violation no witness may carry.
  ASSERT_TRUE(broken.AddToClass(parsed.schema.FindClass("Sub").value(), d)
                  .ok());
  Result<CertifiedWitness> certified = CertifiedWitness::Certify(
      parsed.schema, std::move(broken), WitnessStats{}, &parsed.source_map);
  ASSERT_FALSE(certified.ok());
  EXPECT_EQ(certified.status().code(), StatusCode::kInternal);
  EXPECT_NE(certified.status().message().find("certification refused"),
            std::string::npos)
      << certified.status();
  // The refusal names the violated declaration's source position.
  EXPECT_NE(certified.status().message().find("declared at"),
            std::string::npos)
      << certified.status();
}

TEST(WitnessTextTest, JsonAndDotRenderCertifiedWitness) {
  NamedSchema parsed = ParseSchema(R"(
    schema Pair {
      class A, B;
      relationship R(U1: A, U2: B);
      card A in R.U1 = (1, 1);
      card B in R.U2 = (1, 1);
    }
  )")
                           .value();
  Expansion expansion = Expansion::Build(parsed.schema).value();
  SatisfiabilityChecker checker(expansion);
  ASSERT_TRUE(checker.SatisfiableClasses().value()[0]);
  WitnessSynthesizer synthesizer(checker);
  CertifiedWitness witness = synthesizer.Synthesize().value();

  std::string json = WitnessToJson(witness);
  EXPECT_NE(json.find("\"certified\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"classes\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"R\""), std::string::npos) << json;

  std::string dot = WitnessToDot(witness);
  EXPECT_NE(dot.find("digraph witness"), std::string::npos) << dot;
  EXPECT_NE(dot.find("label=\"U1\""), std::string::npos) << dot;
}

TEST(SolveIntegerStageTest, ProducesAcceptableIntegers) {
  NamedSchema parsed = ParseSchema(R"(
    schema Meeting {
      class Speaker, Talk;
      relationship Holds(U1: Speaker, U2: Talk);
      card Speaker in Holds.U1 = (1, 2);
      card Talk in Holds.U2 = (1, 1);
    }
  )")
                           .value();
  Expansion expansion = Expansion::Build(parsed.schema).value();
  SatisfiabilityChecker checker(expansion);
  ASSERT_TRUE(checker.SatisfiableClasses().value()[0]);
  WitnessStats stats;
  IntegerSolution solution =
      SolveIntegerStage(checker, WitnessOptions{}, nullptr, &stats).value();
  ASSERT_EQ(solution.class_counts.size(), expansion.classes().size());
  ASSERT_EQ(solution.rel_counts.size(), expansion.relationships().size());
  // Acceptability on the integers: populated relationship => populated
  // components.
  for (size_t j = 0; j < expansion.relationships().size(); ++j) {
    if (solution.rel_counts[j].IsZero()) {
      continue;
    }
    for (const CompoundClass& component :
         expansion.relationships()[j].components) {
      int index = expansion.ClassIndexOf(component);
      ASSERT_GE(index, 0);
      EXPECT_TRUE(solution.class_counts[index].IsPositive());
    }
  }
}

}  // namespace
}  // namespace crsat
