// The incremental-vs-cold differential contract (DESIGN.md §13): every
// fast path behind `IncrementalReasoningEnabled()` — dual-simplex
// warm-start repair, the one-LP maximal-support cover, bound-dominance
// memoization, disjointness-driven expansion pruning, and the
// Lenzerini–Nobili ISA-free short-circuit — is an *acceleration*, never a
// semantic change. This suite pins that down three ways: a 100-schema
// differential sweep (incremental and forced-cold implication reports must
// be byte-identical, at 1, 2, and 8 threads), unit tests for the dominance
// lattice's monotonicity (the closure directions are where an off-by-one
// silently flips verdicts), and accounting invariants for the warm-start
// counters (hits + misses = attempts; everything zero when the gate is
// off).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/crsat.h"

namespace crsat {
namespace {

RandomSchemaParams SweepParams(std::uint32_t seed) {
  RandomSchemaParams params;
  params.seed = seed;
  params.num_classes = 4;
  params.num_relationships = 2;
  params.isa_density = 0.3;
  params.refinement_probability = 0.4;
  // A third of the sweep carries disjointness groups so the
  // derived-disjointness expansion pruning sees real work.
  if (seed % 3 == 0) {
    params.num_disjointness_groups = 1;
    params.disjointness_group_size = 2;
  }
  // A handful of ISA-free schemas exercise the LN short-circuit.
  if (seed % 10 == 0) {
    params.isa_density = 0.0;
    params.refinement_probability = 0.0;
  }
  return params;
}

// Schemas for the full-report differential. The implication report pays a
// binary search of satisfiability probes per (class, role) row, and a
// 4-class refined schema can push one report past a minute — so the
// full-digest subset runs on smaller schemas than the verdict sweep.
RandomSchemaParams ReportParams(std::uint32_t seed) {
  RandomSchemaParams params = SweepParams(seed);
  params.num_classes = 3;
  params.num_relationships = 1;
  return params;
}

// Observables of one analysis: class verdicts always, plus — for seeds
// where `full` is set — the complete implication report. The report is the
// expensive half (a binary search of satisfiability probes per row), so the
// sweep runs it on a deterministic subset and pins the cheap verdict digest
// on every seed.
std::string AnalysisDigest(const Schema& schema, bool full) {
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  std::string digest;
  for (bool flag : checker.SatisfiableClasses().value()) {
    digest += flag ? '1' : '0';
  }
  if (!full) {
    return digest;
  }
  digest += "|";
  std::vector<ImpliedCardinalityRow> rows =
      BuildImpliedCardinalityReport(schema, /*search_limit=*/4).value();
  for (const ImpliedCardinalityRow& row : rows) {
    digest += std::to_string(row.cls.value) + ":" +
              std::to_string(row.rel.value) + ":" +
              std::to_string(row.role.value) + "=" +
              std::to_string(row.implied_min) + "..";
    digest += row.implied_max.has_value() ? std::to_string(*row.implied_max)
                                          : std::string("inf");
    digest += row.vacuous ? "v;" : ";";
  }
  return digest;
}

class IncrementalDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalDifferentialTest, ReportsMatchColdPathAtAnyThreadCount) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  // Full-report digests on every 5th seed (over the smaller report
  // schemas); class-verdict digests on the rest keep the 100-seed sweep
  // inside a tier-1 budget.
  const bool full = seed % 5 == 0;
  Schema schema =
      GenerateRandomSchema(full ? ReportParams(seed) : SweepParams(seed))
          .value();

  std::string cold;
  {
    ScopedIncrementalOverride off(false);
    cold = AnalysisDigest(schema, full);
  }
  {
    ScopedIncrementalOverride on(true);
    std::string incremental = AnalysisDigest(schema, full);
    EXPECT_EQ(incremental, cold)
        << "seed " << seed << ": incremental fast paths changed a verdict";
  }
  // Thread sweep on a subsample (every run pays ~6 full analyses); the
  // grouping and verdict application are thread-count independent by
  // construction, this pins it.
  if (seed % 10 == 1) {
    for (int threads : {2, 8}) {
      SetGlobalThreadCount(threads);
      ScopedIncrementalOverride on(true);
      EXPECT_EQ(AnalysisDigest(schema, full), cold)
          << "seed " << seed << " diverges at " << threads << " threads";
    }
    SetGlobalThreadCount(1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDifferentialTest,
                         ::testing::Range(1, 101));

// --- Dominance lattice monotonicity ---------------------------------------

TEST(BoundDominanceCacheTest, ImpliedMinIsDownwardClosed) {
  BoundDominanceCache cache;
  cache.RecordMin(5, /*implied=*/true);
  EXPECT_EQ(cache.LookupMin(5), std::optional<bool>(true));
  EXPECT_EQ(cache.LookupMin(3), std::optional<bool>(true));
  EXPECT_EQ(cache.LookupMin(1), std::optional<bool>(true));
  // Above the implied frontier nothing is decided.
  EXPECT_EQ(cache.LookupMin(6), std::nullopt);
}

TEST(BoundDominanceCacheTest, RefutedMinIsUpwardClosed) {
  BoundDominanceCache cache;
  cache.RecordMin(5, /*implied=*/false);
  EXPECT_EQ(cache.LookupMin(5), std::optional<bool>(false));
  EXPECT_EQ(cache.LookupMin(7), std::optional<bool>(false));
  // Below the refuted frontier nothing is decided.
  EXPECT_EQ(cache.LookupMin(4), std::nullopt);
}

TEST(BoundDominanceCacheTest, ImpliedMaxIsUpwardClosed) {
  BoundDominanceCache cache;
  cache.RecordMax(5, /*implied=*/true);
  EXPECT_EQ(cache.LookupMax(5), std::optional<bool>(true));
  EXPECT_EQ(cache.LookupMax(9), std::optional<bool>(true));
  EXPECT_EQ(cache.LookupMax(4), std::nullopt);
}

TEST(BoundDominanceCacheTest, RefutedMaxIsDownwardClosed) {
  BoundDominanceCache cache;
  cache.RecordMax(5, /*implied=*/false);
  EXPECT_EQ(cache.LookupMax(5), std::optional<bool>(false));
  EXPECT_EQ(cache.LookupMax(2), std::optional<bool>(false));
  EXPECT_EQ(cache.LookupMax(6), std::nullopt);
}

TEST(BoundDominanceCacheTest, FrontiersTightenMonotonically) {
  BoundDominanceCache cache;
  cache.RecordMin(2, /*implied=*/true);
  cache.RecordMin(8, /*implied=*/false);
  // The undecided band is (2, 8); probing inside it narrows the band
  // without ever contradicting an earlier answer.
  EXPECT_EQ(cache.LookupMin(5), std::nullopt);
  cache.RecordMin(5, /*implied=*/true);
  EXPECT_EQ(cache.LookupMin(2), std::optional<bool>(true));
  EXPECT_EQ(cache.LookupMin(5), std::optional<bool>(true));
  EXPECT_EQ(cache.LookupMin(6), std::nullopt);
  EXPECT_EQ(cache.LookupMin(8), std::optional<bool>(false));
}

// --- Warm-start accounting -------------------------------------------------

LinearSystem TwoVarSystem() {
  LinearSystem system;
  VarId x = system.AddVariable("x", /*nonnegative=*/true);
  VarId y = system.AddVariable("y", /*nonnegative=*/true);
  LinearExpr sum = LinearExpr::Var(x);
  sum.AddTerm(y, Rational(1));
  sum.AddConstant(Rational(-4));
  system.AddLe(std::move(sum));  // x + y <= 4
  return system;
}

TEST(WarmStartAccountingTest, HitsPlusMissesEqualsAttempts) {
  ScopedIncrementalOverride on(true);
  GetSimplexStats().Reset();
  LinearSystem system = TwoVarSystem();
  LinearExpr objective = LinearExpr::Var(0);

  WarmStartBasis carry;
  SimplexOptions first;
  first.export_basis = &carry;
  ASSERT_TRUE(SimplexSolver::SolveWith(system, objective, /*maximize=*/true,
                                       first)
                  .ok());
  ASSERT_FALSE(carry.empty());

  SimplexOptions second;
  second.warm_start = &carry;
  ASSERT_TRUE(SimplexSolver::SolveWith(system, objective, /*maximize=*/true,
                                       second)
                  .ok());

  const SimplexStats& stats = GetSimplexStats();
  EXPECT_EQ(stats.solves.load(), 2u);
  // Only the second solve attempted reuse; exactly one of hits/misses.
  EXPECT_EQ(stats.warm_start_hits.load() + stats.warm_start_misses.load(),
            1u);
  EXPECT_EQ(stats.warm_start_hits.load(), 1u);
}

TEST(WarmStartAccountingTest, GateOffMeansNoAttemptsAndNoDualPivots) {
  ScopedIncrementalOverride off(false);
  GetSimplexStats().Reset();
  LinearSystem system = TwoVarSystem();
  LinearExpr objective = LinearExpr::Var(0);

  WarmStartBasis carry;
  SimplexOptions first;
  first.export_basis = &carry;
  ASSERT_TRUE(SimplexSolver::SolveWith(system, objective, /*maximize=*/true,
                                       first)
                  .ok());

  SimplexOptions second;
  second.warm_start = &carry;  // Must be ignored while the gate is off.
  ASSERT_TRUE(SimplexSolver::SolveWith(system, objective, /*maximize=*/true,
                                       second)
                  .ok());

  const SimplexStats& stats = GetSimplexStats();
  EXPECT_EQ(stats.warm_start_hits.load(), 0u);
  EXPECT_EQ(stats.warm_start_misses.load(), 0u);
  EXPECT_EQ(stats.dual_pivots.load(), 0u);
  EXPECT_EQ(stats.incremental_hits.load(), 0u);
}

// --- Maximal support: one-LP cover vs probe rounds -------------------------

TEST(SupportCoverTest, CoverLpMatchesProbeRoundsOnGeneratedSchemas) {
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    Schema schema = GenerateRandomSchema(SweepParams(seed)).value();
    Expansion expansion = Expansion::Build(schema).value();

    std::vector<bool> cold_positive;
    {
      ScopedIncrementalOverride off(false);
      SatisfiabilityChecker checker(expansion);
      cold_positive = checker.Support().value().positive;
    }
    ScopedIncrementalOverride on(true);
    SatisfiabilityChecker checker(expansion);
    AcceptableSupport support = checker.Support().value();
    EXPECT_EQ(support.positive, cold_positive) << "seed " << seed;
    // The witness must certify its own support: positive exactly where
    // the support says so (the cover LP's x* and the folded probe
    // witnesses differ in values, never in support).
    ASSERT_EQ(support.witness.size(), support.positive.size());
    for (size_t v = 0; v < support.positive.size(); ++v) {
      EXPECT_EQ(support.witness[v].IsPositive(), support.positive[v])
          << "seed " << seed << " var " << v;
    }
  }
}

}  // namespace
}  // namespace crsat
