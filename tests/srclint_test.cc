// Tests for tools/srclint: tokenizer behavior, every rule family against
// a violating and a clean fixture tree (tools/srclint/testdata/), the
// escape-hatch policy, and a mutation-style end-to-end check that plants
// a forbidden include into a copy of a real oracle file and expects the
// scan (library and CLI binary both) to turn red.

#include "tools/srclint/srclint.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace {

namespace fs = std::filesystem;
using srclint::CheckSource;
using srclint::CheckTree;
using srclint::Finding;
using srclint::ScannedFile;
using srclint::Token;
using srclint::TokenKind;
using srclint::Tokenize;

std::string Testdata(const std::string& tree) {
  return std::string(CRSAT_SOURCE_DIR) + "/tools/srclint/testdata/" + tree;
}

std::set<std::string> Rules(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& finding : findings) {
    rules.insert(finding.rule);
  }
  return rules;
}

// --- Tokenizer ------------------------------------------------------------

TEST(SrclintTokenizerTest, CommentsAreNotTokensButYieldPragmas) {
  ScannedFile scan = Tokenize(
      "// srclint: allow(unguarded-loop): bounded by construction\n"
      "int x; /* srclint: allow(float-arith): fixture */\n");
  ASSERT_EQ(scan.allows.size(), 2u);
  EXPECT_EQ(scan.allows[0].rule, "unguarded-loop");
  EXPECT_EQ(scan.allows[0].reason, "bounded by construction");
  EXPECT_EQ(scan.allows[0].line, 1);
  EXPECT_EQ(scan.allows[1].rule, "float-arith");
  EXPECT_EQ(scan.allows[1].line, 2);
  // Only `int` and `x` and `;` survive as tokens.
  ASSERT_EQ(scan.tokens.size(), 3u);
  EXPECT_EQ(scan.tokens[0].text, "int");
  EXPECT_EQ(scan.tokens[2].kind, TokenKind::kPunct);
}

TEST(SrclintTokenizerTest, PragmaWithoutReasonHasEmptyReason) {
  ScannedFile scan = Tokenize("// srclint: allow(unguarded-loop)\n");
  ASSERT_EQ(scan.allows.size(), 1u);
  EXPECT_EQ(scan.allows[0].reason, "");
}

TEST(SrclintTokenizerTest, StringContentsDoNotLeakTokens) {
  ScannedFile scan = Tokenize(
      "const char* s = \"for (std::rand) while\";\n"
      "const char* r = R\"(new int[3] for while)\";\n"
      "char c = '\\'';\n");
  for (const Token& token : scan.tokens) {
    EXPECT_NE(token.text, "for") << "loop keyword leaked from a literal";
    EXPECT_NE(token.text, "rand");
    EXPECT_NE(token.text, "new");
  }
}

TEST(SrclintTokenizerTest, PreprocessorDirectiveIsOneTokenWithContinuation) {
  ScannedFile scan = Tokenize(
      "#define PLUS(a, b) \\\n  ((a) + (b))\n"
      "#include \"src/base/status.h\"\n"
      "int y;\n");
  ASSERT_GE(scan.tokens.size(), 2u);
  EXPECT_EQ(scan.tokens[0].kind, TokenKind::kPreprocessor);
  EXPECT_NE(scan.tokens[0].text.find("(a) + (b)"), std::string::npos);
  EXPECT_EQ(scan.tokens[1].kind, TokenKind::kPreprocessor);
  EXPECT_EQ(scan.tokens[1].line, 3);
  // The directive's interior never shows up as identifier tokens.
  EXPECT_EQ(scan.tokens[2].text, "int");
}

TEST(SrclintTokenizerTest, TracksLineNumbers) {
  ScannedFile scan = Tokenize("a\n\nb\n  c\n");
  ASSERT_EQ(scan.tokens.size(), 3u);
  EXPECT_EQ(scan.tokens[0].line, 1);
  EXPECT_EQ(scan.tokens[1].line, 3);
  EXPECT_EQ(scan.tokens[2].line, 4);
}

// --- Rule fixtures: one violating + one clean tree per family -------------

TEST(SrclintRuleTest, LayeringViolationCaught) {
  std::vector<Finding> findings = CheckTree(Testdata("layering_violation"));
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "include-layering");
  EXPECT_EQ(findings[0].file, "src/oracle/peek.cc");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(SrclintRuleTest, LayeringCleanPasses) {
  EXPECT_TRUE(CheckTree(Testdata("layering_clean")).empty());
}

TEST(SrclintRuleTest, ServerLayeringViolationCaught) {
  std::vector<Finding> findings =
      CheckTree(Testdata("serverlayering_violation"));
  std::set<std::string> rules = Rules(findings);
  EXPECT_TRUE(rules.count("server-layering"));
  // Both the src/-root header and the reasoner file are flagged.
  int server_layering = 0;
  for (const Finding& finding : findings) {
    if (finding.rule == "server-layering") {
      ++server_layering;
      EXPECT_TRUE(finding.file == "src/crsat_fixture.h" ||
                  finding.file == "src/reasoner/engine_fixture.cc")
          << finding.file;
    }
  }
  EXPECT_EQ(server_layering, 2);
}

TEST(SrclintRuleTest, ServerLayeringCleanPasses) {
  EXPECT_TRUE(CheckTree(Testdata("serverlayering_clean")).empty());
}

TEST(SrclintRuleTest, ServerLayeringIgnoresLayeringExemptions) {
  // include-layering exempts the umbrella header and the differential
  // driver; server-layering deliberately does not — the daemon stays
  // out of the library surface no matter who asks.
  std::set<std::string> rules = Rules(CheckSource(
      "src/crsat.h", "#include \"src/server/server.h\"\n"));
  EXPECT_TRUE(rules.count("server-layering"));
  rules = Rules(CheckSource("src/oracle/conformance.cc",
                            "#include \"src/server/client.h\"\n"));
  EXPECT_TRUE(rules.count("server-layering"));
  // And the daemon including itself (or downward) stays clean.
  EXPECT_TRUE(CheckSource("src/server/server.cc",
                          "#include \"src/server/handlers.h\"\n"
                          "#include \"src/reasoner/satisfiability.h\"\n")
                  .empty());
}

TEST(SrclintRuleTest, SaturationLayeringViolationCaught) {
  std::vector<Finding> findings =
      CheckTree(Testdata("saturationlayering_violation"));
  std::set<std::string> rules = Rules(findings);
  // The engine reaching into lp/ breaks the include-layering table entry;
  // the reasoner peeking into the engine trips the dedicated rule.
  EXPECT_TRUE(rules.count("include-layering"));
  EXPECT_TRUE(rules.count("saturation-layering"));
  for (const Finding& finding : findings) {
    if (finding.rule == "saturation-layering") {
      EXPECT_EQ(finding.file, "src/reasoner/peek_fixture.cc");
    }
  }
}

TEST(SrclintRuleTest, SaturationLayeringCleanPasses) {
  EXPECT_TRUE(CheckTree(Testdata("saturationlayering_clean")).empty());
}

TEST(SrclintRuleTest, SaturationLayeringExemptsOnlyTheDriver) {
  // The differential driver and the umbrella are where the three-way
  // vote and the public surface live; everything else in production is
  // fenced out, including the rest of src/oracle/.
  EXPECT_TRUE(CheckSource("src/oracle/conformance.cc",
                          "#include \"src/saturation/saturation.h\"\n")
                  .empty());
  EXPECT_TRUE(CheckSource("src/crsat.h",
                          "#include \"src/saturation/graph.h\"\n")
                  .empty());
  std::set<std::string> rules = Rules(CheckSource(
      "src/oracle/brute_force.cc",
      "#include \"src/saturation/saturation.h\"\n"));
  EXPECT_TRUE(rules.count("saturation-layering"));
}

TEST(SrclintRuleTest, RealReasonerStaysOutOfTheSaturationEngine) {
  // Mutation-style pin, same idiom as RealDualRepairStaysGuarded: the
  // real reasoner core scans clean of the rule today, and planting the
  // engine include turns the scan red — so a refactor that quietly
  // couples the system under test to its cross-check fails tier 1.
  std::ifstream in(fs::path(CRSAT_SOURCE_DIR) / "src" / "reasoner" /
                   "satisfiability.cc");
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string original = buffer.str();
  for (const Finding& finding :
       CheckSource("src/reasoner/satisfiability.cc", original)) {
    EXPECT_NE(finding.rule, "saturation-layering") << finding.message;
  }
  std::set<std::string> rules = Rules(
      CheckSource("src/reasoner/satisfiability.cc",
                  "#include \"src/saturation/graph.h\"\n" + original));
  EXPECT_TRUE(rules.count("saturation-layering"));
}

TEST(SrclintRuleTest, UnguardedLoopCaught) {
  std::vector<Finding> findings = CheckTree(Testdata("unguarded_violation"));
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "unguarded-loop");
  EXPECT_EQ(findings[0].file, "src/flow/pump.cc");
}

TEST(SrclintRuleTest, GuardedLoopPasses) {
  EXPECT_TRUE(CheckTree(Testdata("unguarded_clean")).empty());
}

TEST(SrclintRuleTest, ReasonedHatchSuppressesUnguardedLoop) {
  EXPECT_TRUE(CheckTree(Testdata("unguarded_allowed")).empty());
}

TEST(SrclintRuleTest, BannedConstructsCaught) {
  std::vector<Finding> findings = CheckTree(Testdata("banned_violation"));
  // new[], std::rand, argless time() — one finding each.
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule, "banned-construct");
  }
}

TEST(SrclintRuleTest, BannedCleanPasses) {
  EXPECT_TRUE(CheckTree(Testdata("banned_clean")).empty());
}

TEST(SrclintRuleTest, FloatInExactTierCaught) {
  std::vector<Finding> findings =
      CheckTree(Testdata("banned_float_violation"));
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "banned-construct");
  EXPECT_NE(findings[0].message.find("double"), std::string::npos);
}

TEST(SrclintRuleTest, CertifyBypassCaught) {
  std::vector<Finding> findings = CheckTree(Testdata("certify_violation"));
  // Definition, direct construction, out-of-pipeline Certify call.
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule, "certify-non-bypass");
  }
}

TEST(SrclintRuleTest, CertifyLegitimateUsePasses) {
  EXPECT_TRUE(CheckTree(Testdata("certify_clean")).empty());
}

TEST(SrclintRuleTest, DualPivotGuardViolationCaught) {
  std::vector<Finding> findings = CheckTree(Testdata("dualpivot_violation"));
  // Missing guard poll AND missing pivot cap — one finding each.
  ASSERT_EQ(findings.size(), 2u);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule, "dual-pivot-guard");
    EXPECT_EQ(finding.file, "src/lp/repair.cc");
  }
}

TEST(SrclintRuleTest, DualPivotGuardCleanPasses) {
  EXPECT_TRUE(CheckTree(Testdata("dualpivot_clean")).empty());
}

TEST(SrclintRuleTest, RealDualRepairStaysGuarded) {
  // The rule exists to pin the production repair loop; check it against
  // the real file, then mutate the poll key away and expect red — this
  // is what keeps the rule from going silently dead under a rename.
  std::ifstream in(fs::path(CRSAT_SOURCE_DIR) / "src" / "lp" / "simplex.cc");
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string original = buffer.str();
  ASSERT_NE(original.find("RepairPrimalFeasibility"), std::string::npos);
  for (const Finding& finding : CheckSource("src/lp/simplex.cc", original)) {
    EXPECT_NE(finding.rule, "dual-pivot-guard") << finding.message;
  }
  std::string mutated = original;
  size_t at = mutated.find("\"simplex/dual_pivot\"");
  ASSERT_NE(at, std::string::npos);
  mutated.replace(at, 20, "\"simplex/unpolled\"");
  std::set<std::string> rules = Rules(CheckSource("src/lp/simplex.cc",
                                                  mutated));
  EXPECT_TRUE(rules.count("dual-pivot-guard"));
}

TEST(SrclintRuleTest, FailpointHygieneViolationCaught) {
  std::vector<Finding> findings = CheckTree(Testdata("failpoint_violation"));
  // Unregistered id + non-literal argument in src/lp/, plus a site in
  // src/oracle/ (flagged even with a registered id).
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule, "failpoint-hygiene");
  }
  EXPECT_EQ(findings[0].file, "src/lp/probe.cc");
  EXPECT_NE(findings[0].message.find("unregistered"), std::string::npos);
  EXPECT_EQ(findings[1].file, "src/lp/probe.cc");
  EXPECT_NE(findings[1].message.find("string literal"), std::string::npos);
  EXPECT_EQ(findings[2].file, "src/oracle/inject.cc");
  EXPECT_NE(findings[2].message.find("fault-free"), std::string::npos);
}

TEST(SrclintRuleTest, FailpointHygieneCleanPasses) {
  EXPECT_TRUE(CheckTree(Testdata("failpoint_clean")).empty());
}

TEST(SrclintRuleTest, OracleFailpointFlaggedDespiteLayeringExemption) {
  // The conformance driver is exempt from include-layering (it sees both
  // worlds by design) but NOT from failpoint hygiene: the ground truth
  // side must stay fault-free, and the driver arms faults through the
  // registry API, never the macro.
  std::set<std::string> rules = Rules(CheckSource(
      "src/oracle/conformance.cc",
      "bool F() { return CRSAT_FAILPOINT(\"guard/trip\"); }\n"));
  EXPECT_TRUE(rules.count("failpoint-hygiene"));
}

TEST(SrclintRuleTest, RealFailpointSeamsStayRegistered) {
  // Same idiom as RealDualRepairStaysGuarded: the production warm-start
  // seam must scan clean, and a typo'd id must turn the scan red — a
  // typo'd failpoint never fires and silently drops its seam from the
  // chaos sweep.
  std::ifstream in(fs::path(CRSAT_SOURCE_DIR) / "src" / "lp" / "simplex.cc");
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string original = buffer.str();
  ASSERT_NE(original.find("CRSAT_FAILPOINT"), std::string::npos);
  for (const Finding& finding : CheckSource("src/lp/simplex.cc", original)) {
    EXPECT_NE(finding.rule, "failpoint-hygiene") << finding.message;
  }
  std::string mutated = original;
  size_t at = mutated.find("\"lp/warm_start_reject\"");
  ASSERT_NE(at, std::string::npos);
  mutated.replace(at, 22, "\"lp/warm_start_rejekt\"");
  std::set<std::string> rules = Rules(CheckSource("src/lp/simplex.cc",
                                                  mutated));
  EXPECT_TRUE(rules.count("failpoint-hygiene"));
}

TEST(SrclintRuleTest, FailpointCatalogMatchesRealRegistry) {
  // Drift guard for the mirrored catalog: parse the registry array out of
  // src/base/failpoint.cc and require set equality. Registering a new
  // failpoint without mirroring it (or vice versa) fails right here.
  std::ifstream in(fs::path(CRSAT_SOURCE_DIR) / "src" / "base" /
                   "failpoint.cc");
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();
  size_t pos = source.find("kRegisteredFailpoints[]");
  ASSERT_NE(pos, std::string::npos);
  size_t end = source.find("};", pos);
  ASSERT_NE(end, std::string::npos);
  std::set<std::string> registry;
  while (true) {
    size_t open = source.find('"', pos);
    if (open == std::string::npos || open >= end) {
      break;
    }
    size_t close = source.find('"', open + 1);
    ASSERT_NE(close, std::string::npos);
    registry.insert(source.substr(open + 1, close - open - 1));
    pos = close + 1;
  }
  std::set<std::string> mirrored(srclint::FailpointRegistry().begin(),
                                 srclint::FailpointRegistry().end());
  EXPECT_EQ(mirrored, registry);
}

TEST(SrclintRuleTest, BadAllowCaught) {
  std::vector<Finding> findings = CheckTree(Testdata("badallow_violation"));
  std::set<std::string> rules = Rules(findings);
  // The reasonless hatch is flagged AND stays ineffective: the loop it
  // tried to waive is still reported.
  EXPECT_TRUE(rules.count("bad-allow"));
  EXPECT_TRUE(rules.count("unguarded-loop"));
}

// --- CheckSource details --------------------------------------------------

TEST(SrclintRuleTest, ConformanceDriverIsLayeringExempt) {
  EXPECT_TRUE(CheckSource("src/oracle/conformance.cc",
                          "#include \"src/reasoner/satisfiability.h\"\n")
                  .empty());
  EXPECT_FALSE(CheckSource("src/oracle/brute_force.cc",
                           "#include \"src/reasoner/satisfiability.h\"\n")
                   .empty());
}

TEST(SrclintRuleTest, HeadersExemptFromUnguardedLoop) {
  // The guard-threading rule targets .cc files; a header-only helper
  // loop (e.g. an inline accessor) is the including file's business.
  EXPECT_TRUE(CheckSource("src/lp/helper.h",
                          "inline int S(int n) {\n"
                          "  int t = 0;\n"
                          "  for (int i = 0; i < n; ++i) t += i;\n"
                          "  return t;\n"
                          "}\n")
                  .empty());
}

TEST(SrclintRuleTest, QualifiedRandAndMemberTimeAllowed) {
  EXPECT_TRUE(CheckSource("src/cr/ok.cc",
                          "int f(MyRng& rng, Clock& c) {\n"
                          "  return myns::rand() + rng.rand() + c.time(3);\n"
                          "}\n")
                  .empty());
}

TEST(SrclintRuleTest, FindingsRenderWithFileLineAndRule) {
  std::vector<Finding> findings = CheckTree(Testdata("layering_violation"));
  ASSERT_FALSE(findings.empty());
  std::string text = srclint::FindingsToText(findings);
  EXPECT_NE(text.find("src/oracle/peek.cc:2:"), std::string::npos);
  EXPECT_NE(text.find("[include-layering]"), std::string::npos);
  std::string json = srclint::FindingsToJson(findings);
  EXPECT_NE(json.find("\"rule\": \"include-layering\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": "), std::string::npos);
}

// --- Mutation-style end-to-end check --------------------------------------

class SrclintMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("srclint_mutation_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
    fs::create_directories(root_ / "src" / "oracle");
    std::ifstream in(fs::path(CRSAT_SOURCE_DIR) / "src" / "oracle" /
                     "brute_force.cc");
    ASSERT_TRUE(in.is_open());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    original_ = buffer.str();
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void WriteCopy(const std::string& content) {
    std::ofstream out(root_ / "src" / "oracle" / "brute_force.cc");
    out << content;
  }

  int RunBinary() {
    std::string command = std::string(SRCLINT_BINARY) + " --root " +
                          root_.string() + " > /dev/null 2>&1";
    int status = std::system(command.c_str());
    return WEXITSTATUS(status);
  }

  fs::path root_;
  std::string original_;
};

TEST_F(SrclintMutationTest, UnmutatedOracleFileIsClean) {
  WriteCopy(original_);
  EXPECT_TRUE(CheckTree(root_.string()).empty());
  EXPECT_EQ(RunBinary(), 0);
}

TEST_F(SrclintMutationTest, PlantedForbiddenIncludeTurnsTheScanRed) {
  WriteCopy("#include \"src/lp/simplex.h\"\n" + original_);
  std::vector<Finding> findings = CheckTree(root_.string());
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "include-layering");
  EXPECT_EQ(findings[0].file, "src/oracle/brute_force.cc");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(RunBinary(), 1);
}

}  // namespace
