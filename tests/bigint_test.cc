#include "src/math/bigint.h"

#include <cstdint>
#include <random>
#include <string>

#include <gtest/gtest.h>

namespace crsat {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.BitLength(), 0u);
}

TEST(BigIntTest, ConstructFromInt64) {
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-42).ToString(), "-42");
  EXPECT_EQ(BigInt(0).ToString(), "0");
  EXPECT_EQ(BigInt(std::numeric_limits<std::int64_t>::max()).ToString(),
            "9223372036854775807");
  EXPECT_EQ(BigInt(std::numeric_limits<std::int64_t>::min()).ToString(),
            "-9223372036854775808");
}

TEST(BigIntTest, FromStringParsesSignedDecimals) {
  EXPECT_EQ(BigInt::FromString("123").value(), BigInt(123));
  EXPECT_EQ(BigInt::FromString("-123").value(), BigInt(-123));
  EXPECT_EQ(BigInt::FromString("+7").value(), BigInt(7));
  EXPECT_EQ(BigInt::FromString("0").value(), BigInt(0));
  EXPECT_EQ(BigInt::FromString("-0").value(), BigInt(0));
  EXPECT_EQ(BigInt::FromString("00000123").value(), BigInt(123));
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("+").ok());
  EXPECT_FALSE(BigInt::FromString("12a3").ok());
  EXPECT_FALSE(BigInt::FromString(" 12").ok());
  EXPECT_FALSE(BigInt::FromString("1 2").ok());
}

TEST(BigIntTest, FromStringRoundTripsLargeValues) {
  const std::string digits =
      "123456789012345678901234567890123456789012345678901234567890";
  BigInt value = BigInt::FromString(digits).value();
  EXPECT_EQ(value.ToString(), digits);
  BigInt negative = BigInt::FromString("-" + digits).value();
  EXPECT_EQ(negative.ToString(), "-" + digits);
}

TEST(BigIntTest, AdditionBasics) {
  EXPECT_EQ(BigInt(2) + BigInt(3), BigInt(5));
  EXPECT_EQ(BigInt(-2) + BigInt(3), BigInt(1));
  EXPECT_EQ(BigInt(2) + BigInt(-3), BigInt(-1));
  EXPECT_EQ(BigInt(-2) + BigInt(-3), BigInt(-5));
  EXPECT_EQ(BigInt(5) + BigInt(-5), BigInt(0));
  EXPECT_EQ(BigInt(0) + BigInt(7), BigInt(7));
  EXPECT_EQ(BigInt(7) + BigInt(0), BigInt(7));
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::FromString("4294967295").value();  // 2^32 - 1.
  EXPECT_EQ((a + BigInt(1)).ToString(), "4294967296");
  BigInt b = BigInt::FromString("18446744073709551615").value();  // 2^64-1.
  EXPECT_EQ((b + BigInt(1)).ToString(), "18446744073709551616");
}

TEST(BigIntTest, SubtractionBasics) {
  EXPECT_EQ(BigInt(5) - BigInt(3), BigInt(2));
  EXPECT_EQ(BigInt(3) - BigInt(5), BigInt(-2));
  EXPECT_EQ(BigInt(-3) - BigInt(-5), BigInt(2));
  EXPECT_EQ(BigInt(5) - BigInt(5), BigInt(0));
}

TEST(BigIntTest, MultiplicationBasics) {
  EXPECT_EQ(BigInt(6) * BigInt(7), BigInt(42));
  EXPECT_EQ(BigInt(-6) * BigInt(7), BigInt(-42));
  EXPECT_EQ(BigInt(-6) * BigInt(-7), BigInt(42));
  EXPECT_EQ(BigInt(0) * BigInt(12345), BigInt(0));
}

TEST(BigIntTest, MultiplicationLarge) {
  BigInt a = BigInt::FromString("123456789123456789").value();
  BigInt b = BigInt::FromString("987654321987654321").value();
  EXPECT_EQ((a * b).ToString(), "121932631356500531347203169112635269");
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ(BigInt(7) / BigInt(2), BigInt(3));
  EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
  EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
  EXPECT_EQ(BigInt(-7) / BigInt(-2), BigInt(3));
  EXPECT_EQ(BigInt(7) % BigInt(2), BigInt(1));
  EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
  EXPECT_EQ(BigInt(7) % BigInt(-2), BigInt(1));
  EXPECT_EQ(BigInt(-7) % BigInt(-2), BigInt(-1));
}

TEST(BigIntTest, DivModInvariantHoldsOnRandomInputs) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    std::int64_t a = static_cast<std::int64_t>(rng());
    std::int64_t b = static_cast<std::int64_t>(rng() % 100000) - 50000;
    if (b == 0) {
      continue;
    }
    BigInt big_a(a);
    BigInt big_b(b);
    BigInt::DivModResult divmod = big_a.DivMod(big_b).value();
    EXPECT_EQ(divmod.quotient, BigInt(a / b)) << a << " / " << b;
    EXPECT_EQ(divmod.remainder, BigInt(a % b)) << a << " % " << b;
    EXPECT_EQ(divmod.quotient * big_b + divmod.remainder, big_a);
  }
}

TEST(BigIntTest, MultiLimbDivisionReconstructs) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 500; ++i) {
    // Build big random values from products and sums of 64-bit chunks, so
    // the Knuth-D multi-limb path is exercised.
    BigInt a = BigInt(static_cast<std::int64_t>(rng() >> 1)) *
                   BigInt(static_cast<std::int64_t>(rng() >> 1)) +
               BigInt(static_cast<std::int64_t>(rng() >> 1));
    BigInt b = BigInt(static_cast<std::int64_t>(rng() >> 1)) +
               BigInt(1);  // Nonzero.
    BigInt::DivModResult divmod = a.DivMod(b).value();
    EXPECT_EQ(divmod.quotient * b + divmod.remainder, a);
    EXPECT_TRUE(divmod.remainder.Abs() < b.Abs());
  }
}

TEST(BigIntTest, DivisionByLargerYieldsZero) {
  EXPECT_EQ(BigInt(3) / BigInt(7), BigInt(0));
  EXPECT_EQ(BigInt(3) % BigInt(7), BigInt(3));
}

TEST(BigIntTest, DivModRejectsZeroDivisor) {
  EXPECT_FALSE(BigInt(3).DivMod(BigInt(0)).ok());
}

TEST(BigIntTest, KnuthAddBackCase) {
  // Classic divisor/dividend pair that triggers the rare "add back" branch
  // in algorithm D (top limbs engineered so qhat overshoots).
  BigInt a = BigInt::FromString("340282366920938463463374607431768211456")
                 .value();  // 2^128.
  BigInt b =
      BigInt::FromString("18446744073709551617").value();  // 2^64 + 1.
  BigInt::DivModResult divmod = a.DivMod(b).value();
  EXPECT_EQ(divmod.quotient * b + divmod.remainder, a);
  EXPECT_TRUE(divmod.remainder < b);
  EXPECT_EQ(divmod.quotient.ToString(), "18446744073709551615");
  EXPECT_EQ(divmod.remainder.ToString(), "1");
}

TEST(BigIntTest, ComparisonIsTotalOrder) {
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_LT(BigInt(-3), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(3));
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_LT(BigInt(5), BigInt::FromString("5000000000000000000000").value());
  EXPECT_LT(BigInt::FromString("-5000000000000000000000").value(),
            BigInt(-5));
  EXPECT_LE(BigInt(5), BigInt(5));
  EXPECT_GE(BigInt(5), BigInt(5));
  EXPECT_GT(BigInt(6), BigInt(5));
}

TEST(BigIntTest, AbsAndNegate) {
  EXPECT_EQ(BigInt(-5).Abs(), BigInt(5));
  EXPECT_EQ(BigInt(5).Abs(), BigInt(5));
  EXPECT_EQ(-BigInt(5), BigInt(-5));
  EXPECT_EQ(-BigInt(0), BigInt(0));
}

TEST(BigIntTest, ToInt64RoundTripsAndRejectsOverflow) {
  EXPECT_EQ(BigInt(12345).ToInt64().value(), 12345);
  EXPECT_EQ(BigInt(-12345).ToInt64().value(), -12345);
  EXPECT_EQ(BigInt(std::numeric_limits<std::int64_t>::max()).ToInt64().value(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(BigInt(std::numeric_limits<std::int64_t>::min()).ToInt64().value(),
            std::numeric_limits<std::int64_t>::min());
  BigInt too_big = BigInt::FromString("9223372036854775808").value();
  EXPECT_FALSE(too_big.ToInt64().ok());
  EXPECT_EQ((-too_big).ToInt64().value(),
            std::numeric_limits<std::int64_t>::min());
  BigInt too_small = BigInt::FromString("-9223372036854775809").value();
  EXPECT_FALSE(too_small.ToInt64().ok());
}

TEST(BigIntTest, GcdMatchesEuclid) {
  EXPECT_EQ(Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(Gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(Gcd(BigInt(12), BigInt(-18)), BigInt(6));
  EXPECT_EQ(Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(Gcd(BigInt(5), BigInt(0)), BigInt(5));
  EXPECT_EQ(Gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(Gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigIntTest, LcmBasics) {
  EXPECT_EQ(Lcm(BigInt(4), BigInt(6)), BigInt(12));
  EXPECT_EQ(Lcm(BigInt(-4), BigInt(6)), BigInt(12));
  EXPECT_EQ(Lcm(BigInt(0), BigInt(6)), BigInt(0));
  EXPECT_EQ(Lcm(BigInt(7), BigInt(7)), BigInt(7));
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(2).BitLength(), 2u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  BigInt big = BigInt::FromString("18446744073709551616").value();  // 2^64.
  EXPECT_EQ(big.BitLength(), 65u);
}

TEST(BigIntTest, PowersChainConsistency) {
  // (3^40) / (3^20) == 3^20 exactly.
  BigInt p20(1);
  for (int i = 0; i < 20; ++i) {
    p20 *= BigInt(3);
  }
  BigInt p40 = p20 * p20;
  EXPECT_EQ(p40 / p20, p20);
  EXPECT_EQ(p40 % p20, BigInt(0));
  EXPECT_EQ(p20.ToString(), "3486784401");
}

// Randomized cross-check of ToString against 64-bit arithmetic composed
// into multi-limb values via the distributive law.
TEST(BigIntTest, RandomizedArithmeticAgainstInt128) {
  std::mt19937_64 rng(23);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t a = static_cast<std::int64_t>(rng());
    std::int64_t b = static_cast<std::int64_t>(rng());
    __int128 wide = static_cast<__int128>(a) * b;
    BigInt product = BigInt(a) * BigInt(b);
    // Render the __int128 manually.
    bool negative = wide < 0;
    unsigned __int128 magnitude =
        negative ? -static_cast<unsigned __int128>(wide)
                 : static_cast<unsigned __int128>(wide);
    std::string expected;
    if (magnitude == 0) {
      expected = "0";
    } else {
      while (magnitude > 0) {
        expected.insert(expected.begin(),
                        static_cast<char>('0' + static_cast<int>(
                                                    magnitude % 10)));
        magnitude /= 10;
      }
      if (negative) {
        expected.insert(expected.begin(), '-');
      }
    }
    EXPECT_EQ(product.ToString(), expected) << a << " * " << b;
  }
}

}  // namespace
}  // namespace crsat
