#include "src/reasoner/model_builder.h"

#include <gtest/gtest.h>

#include "src/cr/model_checker.h"
#include "tests/test_schemas.h"

namespace crsat {
namespace {

using crsat::testing::EmploymentSchema;
using crsat::testing::Figure1Schema;
using crsat::testing::MeetingSchema;

TEST(ModelBuilderTest, MeetingModelRealizesFigure6Shape) {
  // The paper's Figure 6 derives a model with 2 speaker-discussants and 2
  // talks from the solution of the disequation system. Our witness may
  // scale differently but must be a verified model populating Speaker.
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  Interpretation model =
      ModelBuilder::BuildModelForClass(checker,
                                       schema.FindClass("Speaker").value())
          .value();
  EXPECT_TRUE(ModelChecker::IsModel(schema, model));
  ClassId speaker = schema.FindClass("Speaker").value();
  ClassId discussant = schema.FindClass("Discussant").value();
  ClassId talk = schema.FindClass("Talk").value();
  EXPECT_FALSE(model.ClassExtension(speaker).empty());
  EXPECT_FALSE(model.ClassExtension(talk).empty());
  // The schema forces speakers == discussants (Figure 7).
  EXPECT_EQ(model.ClassExtension(speaker), model.ClassExtension(discussant));
}

TEST(ModelBuilderTest, BuildModelForUnsatisfiableClassFails) {
  Schema schema = Figure1Schema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  Result<Interpretation> result = ModelBuilder::BuildModelForClass(
      checker, schema.FindClass("C").value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModelBuilderTest, EmploymentModelBalancesDegrees) {
  // Every employee in exactly one department; departments need >= 3
  // employees: the witness must respect both.
  Schema schema = EmploymentSchema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  Interpretation model =
      ModelBuilder::BuildModelForClass(
          checker, schema.FindClass("Department").value())
          .value();
  EXPECT_TRUE(ModelChecker::IsModel(schema, model));
  ClassId department = schema.FindClass("Department").value();
  ClassId employee = schema.FindClass("Employee").value();
  EXPECT_FALSE(model.ClassExtension(department).empty());
  EXPECT_GE(model.ClassExtension(employee).size(),
            3 * model.ClassExtension(department).size());
}

TEST(ModelBuilderTest, ZeroSolutionYieldsEmptyModel) {
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  IntegerSolution zeros;
  zeros.class_counts.assign(expansion.classes().size(), BigInt(0));
  zeros.rel_counts.assign(expansion.relationships().size(), BigInt(0));
  Interpretation model = ModelBuilder::BuildModel(expansion, zeros).value();
  EXPECT_EQ(model.domain_size(), 0);
  EXPECT_TRUE(ModelChecker::IsModel(schema, model));
}

TEST(ModelBuilderTest, MismatchedSolutionSizeRejected) {
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  IntegerSolution bad;
  bad.class_counts.assign(1, BigInt(0));
  bad.rel_counts.assign(expansion.relationships().size(), BigInt(0));
  EXPECT_FALSE(ModelBuilder::BuildModel(expansion, bad).ok());
}

TEST(ModelBuilderTest, UnacceptableSolutionRejected) {
  // Tuples in a compound relationship whose component class is empty.
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "B"}});
  Schema schema = builder.Build().value();
  Expansion expansion = Expansion::Build(schema).value();
  IntegerSolution solution;
  solution.class_counts.assign(expansion.classes().size(), BigInt(0));
  solution.rel_counts.assign(expansion.relationships().size(), BigInt(0));
  solution.rel_counts[0] = BigInt(1);
  Result<Interpretation> result =
      ModelBuilder::BuildModel(expansion, solution);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModelBuilderTest, DuplicateCollisionsResolvedByFlowOrScaling) {
  // One A, one B, and R pairing them with multiplicity exactly 2 on both
  // sides: at scale 1 the only candidate extension would need the tuple
  // (a, b) twice — impossible for a set. The builder must scale the
  // solution and realize 2 A's, 2 B's, 4 tuples (or similar).
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "B"}});
  builder.SetCardinality("A", "R", "U", {2, 2});
  builder.SetCardinality("B", "R", "V", {2, 2});
  Schema schema = builder.Build().value();
  Expansion expansion = Expansion::Build(schema).value();

  IntegerSolution cramped;
  cramped.class_counts.assign(expansion.classes().size(), BigInt(0));
  cramped.rel_counts.assign(expansion.relationships().size(), BigInt(0));
  int a_index = expansion.ClassIndexOf(CompoundClass(0b01));
  int b_index = expansion.ClassIndexOf(CompoundClass(0b10));
  ASSERT_GE(a_index, 0);
  ASSERT_GE(b_index, 0);
  cramped.class_counts[a_index] = BigInt(1);
  cramped.class_counts[b_index] = BigInt(1);
  // Find the compound relationship <{A},{B}>.
  int rel_index = -1;
  for (size_t i = 0; i < expansion.relationships().size(); ++i) {
    if (expansion.relationships()[i].components[0] == CompoundClass(0b01) &&
        expansion.relationships()[i].components[1] == CompoundClass(0b10)) {
      rel_index = static_cast<int>(i);
    }
  }
  ASSERT_GE(rel_index, 0);
  cramped.rel_counts[rel_index] = BigInt(2);

  Interpretation model = ModelBuilder::BuildModel(expansion, cramped).value();
  EXPECT_TRUE(ModelChecker::IsModel(schema, model));
  ClassId a = schema.FindClass("A").value();
  RelationshipId r = schema.FindRelationship("R").value();
  EXPECT_GE(model.ClassExtension(a).size(), 2u);
  EXPECT_GE(model.RelationshipExtension(r).size(), 4u);
}

TEST(ModelBuilderTest, TernaryRelationshipRealized) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddClass("C");
  builder.AddRelationship("T", {{"U", "A"}, {"V", "B"}, {"W", "C"}});
  builder.SetCardinality("A", "T", "U", {1, 2});
  builder.SetCardinality("B", "T", "V", {1, 1});
  builder.SetCardinality("C", "T", "W", {1, 3});
  Schema schema = builder.Build().value();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  Interpretation model =
      ModelBuilder::BuildModelForClass(checker,
                                       schema.FindClass("A").value())
          .value();
  EXPECT_TRUE(ModelChecker::IsModel(schema, model));
  EXPECT_FALSE(
      model.RelationshipExtension(schema.FindRelationship("T").value())
          .empty());
}

TEST(ModelBuilderTest, SizeCapEnforced) {
  Schema schema = EmploymentSchema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  IntegerSolution solution = checker.AcceptableIntegerSolution().value();
  ModelBuildOptions options;
  options.max_model_size = 1;  // Far below any witness for this schema.
  Result<Interpretation> result =
      ModelBuilder::BuildModel(expansion, solution, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(ModelBuilderTest, ModelsForEveryMeetingClassVerify) {
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  for (ClassId cls : schema.AllClasses()) {
    Interpretation model =
        ModelBuilder::BuildModelForClass(checker, cls).value();
    EXPECT_TRUE(ModelChecker::IsModel(schema, model))
        << schema.ClassName(cls);
    EXPECT_FALSE(model.ClassExtension(cls).empty()) << schema.ClassName(cls);
  }
}

}  // namespace
}  // namespace crsat
