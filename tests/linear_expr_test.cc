#include "src/lp/linear_expr.h"

#include <gtest/gtest.h>

#include "src/lp/linear_system.h"

namespace crsat {
namespace {

TEST(LinearExprTest, DefaultIsZero) {
  LinearExpr expr;
  EXPECT_TRUE(expr.IsZero());
  EXPECT_EQ(expr.ToString(), "0");
  EXPECT_EQ(expr.Evaluate({}), Rational(0));
}

TEST(LinearExprTest, TermsAccumulateAndCancel) {
  LinearExpr expr;
  expr.AddTerm(0, Rational(2));
  expr.AddTerm(0, Rational(3));
  EXPECT_EQ(expr.CoefficientOf(0), Rational(5));
  expr.AddTerm(0, Rational(-5));
  EXPECT_EQ(expr.CoefficientOf(0), Rational(0));
  EXPECT_TRUE(expr.IsZero());
  EXPECT_TRUE(expr.terms().empty());
}

TEST(LinearExprTest, ZeroCoefficientIsDropped) {
  LinearExpr expr;
  expr.AddTerm(3, Rational(0));
  EXPECT_TRUE(expr.terms().empty());
}

TEST(LinearExprTest, AdditionMergesTerms) {
  LinearExpr a = LinearExpr::Term(0, Rational(1));
  a.AddTerm(1, Rational(2));
  LinearExpr b = LinearExpr::Term(1, Rational(-2));
  b.AddTerm(2, Rational(4));
  b.AddConstant(Rational(7));
  LinearExpr sum = a + b;
  EXPECT_EQ(sum.CoefficientOf(0), Rational(1));
  EXPECT_EQ(sum.CoefficientOf(1), Rational(0));
  EXPECT_EQ(sum.CoefficientOf(2), Rational(4));
  EXPECT_EQ(sum.constant(), Rational(7));
}

TEST(LinearExprTest, ScalarMultiplication) {
  LinearExpr expr = LinearExpr::Term(0, Rational(3));
  expr.AddConstant(Rational(5));
  LinearExpr scaled = expr * Rational(1, 3);
  EXPECT_EQ(scaled.CoefficientOf(0), Rational(1));
  EXPECT_EQ(scaled.constant(), Rational(5, 3));
  LinearExpr zeroed = expr * Rational(0);
  EXPECT_TRUE(zeroed.IsZero());
}

TEST(LinearExprTest, NegationFlipsEverything) {
  LinearExpr expr = LinearExpr::Term(1, Rational(2));
  expr.AddConstant(Rational(-3));
  LinearExpr negated = -expr;
  EXPECT_EQ(negated.CoefficientOf(1), Rational(-2));
  EXPECT_EQ(negated.constant(), Rational(3));
  EXPECT_TRUE((expr + negated).IsZero());
}

TEST(LinearExprTest, EvaluateUsesAssignment) {
  LinearExpr expr = LinearExpr::Term(0, Rational(2));
  expr.AddTerm(2, Rational(-1));
  expr.AddConstant(Rational(10));
  std::vector<Rational> values = {Rational(3), Rational(99), Rational(4)};
  EXPECT_EQ(expr.Evaluate(values), Rational(12));  // 6 - 4 + 10.
}

TEST(LinearExprTest, EvaluateTreatsMissingVariablesAsZero) {
  LinearExpr expr = LinearExpr::Term(5, Rational(2));
  expr.AddConstant(Rational(1));
  EXPECT_EQ(expr.Evaluate({Rational(7)}), Rational(1));
}

TEST(LinearExprTest, ToStringFormatsSignsAndCoefficients) {
  LinearExpr expr = LinearExpr::Term(0, Rational(2));
  expr.AddTerm(1, Rational(-1));
  expr.AddConstant(Rational(3));
  EXPECT_EQ(expr.ToString(), "2*x0 - x1 + 3");
  LinearExpr negative_lead = LinearExpr::Term(0, Rational(-1));
  EXPECT_EQ(negative_lead.ToString(), "-x0");
  EXPECT_EQ(LinearExpr(Rational(-4)).ToString(), "-4");
}

TEST(LinearSystemTest, VariableBookkeeping) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  VarId y = system.AddVariable("y", /*nonnegative=*/false);
  EXPECT_EQ(system.num_variables(), 2);
  EXPECT_EQ(system.VariableName(x), "x");
  EXPECT_TRUE(system.IsNonnegative(x));
  EXPECT_FALSE(system.IsNonnegative(y));
}

TEST(LinearSystemTest, SatisfactionChecksAllConstraintsAndSigns) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  VarId y = system.AddVariable("y");
  // x - y >= 0, x + y <= 0 written as -(x + y) >= 0 ... use AddLe.
  LinearExpr diff = LinearExpr::Var(x);
  diff.AddTerm(y, Rational(-1));
  system.AddGe(diff);
  LinearExpr total = LinearExpr::Var(x);
  total.AddTerm(y, Rational(1));
  total.AddConstant(Rational(-10));
  system.AddLe(total);  // x + y <= 10.
  EXPECT_TRUE(system.IsSatisfiedBy({Rational(5), Rational(5)}));
  EXPECT_TRUE(system.IsSatisfiedBy({Rational(6), Rational(4)}));
  EXPECT_FALSE(system.IsSatisfiedBy({Rational(4), Rational(6)}));
  EXPECT_FALSE(system.IsSatisfiedBy({Rational(6), Rational(5)}));
  EXPECT_FALSE(system.IsSatisfiedBy({Rational(-1), Rational(-2)}));
}

TEST(LinearSystemTest, HomogeneityAndStrictnessPredicates) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  system.AddGe(LinearExpr::Var(x));
  EXPECT_TRUE(system.IsHomogeneous());
  EXPECT_FALSE(system.HasStrictConstraints());
  system.AddGt(LinearExpr::Var(x));
  EXPECT_TRUE(system.HasStrictConstraints());
  LinearExpr with_constant = LinearExpr::Var(x);
  with_constant.AddConstant(Rational(-1));
  system.AddGe(with_constant);
  EXPECT_FALSE(system.IsHomogeneous());
}

TEST(LinearSystemTest, ConstraintToString) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  LinearExpr expr = LinearExpr::Term(x, Rational(2));
  expr.AddConstant(Rational(-1));
  system.AddEq(expr);
  EXPECT_EQ(system.constraints()[0].ToString(), "2*x0 - 1 == 0");
}

}  // namespace
}  // namespace crsat
