#include "src/reasoner/repair.h"

#include <gtest/gtest.h>

#include "src/reasoner/satisfiability.h"
#include "tests/test_schemas.h"

namespace crsat {
namespace {

using crsat::testing::Figure1Schema;
using crsat::testing::MeetingSchema;
using crsat::testing::MeetingSchemaWithEagerDiscussants;

TEST(RepairTest, SatisfiableClassHasNoRepairs) {
  Schema schema = MeetingSchema();
  Result<std::vector<RepairSuggestion>> result =
      SuggestRepairs(schema, schema.FindClass("Speaker").value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RepairTest, Figure1SuggestionsAreMinimalEdits) {
  Schema schema = Figure1Schema();
  ClassId c = schema.FindClass("C").value();
  std::vector<RepairSuggestion> suggestions =
      SuggestRepairs(schema, c).value();
  // Expected: remove the ISA edge, lower (2,*) min to 1, raise (0,1) max
  // to 2.
  bool found_isa_removal = false;
  bool found_min_relax = false;
  bool found_max_relax = false;
  for (const RepairSuggestion& suggestion : suggestions) {
    if (suggestion.action == RepairSuggestion::Action::kRemove &&
        suggestion.constraint.kind == CoreConstraint::Kind::kIsa) {
      found_isa_removal = true;
    }
    if (suggestion.action == RepairSuggestion::Action::kRelaxMin) {
      found_min_relax = true;
      ASSERT_TRUE(suggestion.relaxed.has_value());
      EXPECT_EQ(suggestion.relaxed->min, 1u);  // (2,*) -> (1,*).
    }
    if (suggestion.action == RepairSuggestion::Action::kRelaxMax) {
      found_max_relax = true;
      ASSERT_TRUE(suggestion.relaxed.has_value());
      EXPECT_EQ(suggestion.relaxed->max, std::optional<std::uint64_t>(2));
    }
  }
  EXPECT_TRUE(found_isa_removal);
  EXPECT_TRUE(found_min_relax);
  EXPECT_TRUE(found_max_relax);
}

TEST(RepairTest, SuggestionsActuallyRepair) {
  // Apply each cardinality relaxation and verify the class becomes
  // satisfiable.
  Schema schema = Figure1Schema();
  ClassId c = schema.FindClass("C").value();
  std::vector<RepairSuggestion> suggestions =
      SuggestRepairs(schema, c).value();
  for (const RepairSuggestion& suggestion : suggestions) {
    if (!suggestion.relaxed.has_value()) {
      continue;
    }
    const CardinalityDeclaration& decl =
        schema.cardinality_declarations()[suggestion.constraint.index];
    SchemaBuilder builder;
    builder.AddClass("C");
    builder.AddClass("D");
    builder.AddIsa("D", "C");
    builder.AddRelationship("R", {{"V1", "C"}, {"V2", "D"}});
    for (const CardinalityDeclaration& existing :
         schema.cardinality_declarations()) {
      Cardinality value = (&existing == &decl) ? *suggestion.relaxed
                                               : existing.cardinality;
      builder.SetCardinality(schema.ClassName(existing.cls),
                             schema.RelationshipName(existing.rel),
                             schema.RoleName(existing.role), value);
    }
    Schema repaired = builder.Build().value();
    Expansion expansion = Expansion::Build(repaired).value();
    SatisfiabilityChecker checker(expansion);
    EXPECT_TRUE(checker.IsClassSatisfiable(c).value())
        << suggestion.description;
  }
}

TEST(RepairTest, EagerDiscussantSuggestionsIncludeTheRefinement) {
  Schema schema = MeetingSchemaWithEagerDiscussants();
  ClassId speaker = schema.FindClass("Speaker").value();
  std::vector<RepairSuggestion> suggestions =
      SuggestRepairs(schema, speaker).value();
  EXPECT_FALSE(suggestions.empty());
  bool mentions_refinement = false;
  for (const RepairSuggestion& suggestion : suggestions) {
    if (suggestion.constraint.description.find("(2, 2)") !=
        std::string::npos) {
      mentions_refinement = true;
      // The natural fix: lower the eager minimum back to something
      // satisfiable, or raise the cap.
      EXPECT_TRUE(suggestion.action == RepairSuggestion::Action::kRelaxMin ||
                  suggestion.action == RepairSuggestion::Action::kRelaxMax ||
                  suggestion.action == RepairSuggestion::Action::kRemove);
    }
  }
  EXPECT_TRUE(mentions_refinement);
}

TEST(RepairTest, DisjointnessDrivenUnsatSuggestsRemovals) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddClass("C");
  builder.AddIsa("B", "A");
  builder.AddIsa("B", "C");
  builder.AddDisjointness({"A", "C"});
  builder.AddRelationship("R", {{"U", "A"}, {"V", "C"}});
  Schema schema = builder.Build().value();
  std::vector<RepairSuggestion> suggestions =
      SuggestRepairs(schema, schema.FindClass("B").value()).value();
  ASSERT_EQ(suggestions.size(), 3u);  // Two ISA edges + disjointness.
  for (const RepairSuggestion& suggestion : suggestions) {
    EXPECT_EQ(suggestion.action, RepairSuggestion::Action::kRemove);
  }
}

}  // namespace
}  // namespace crsat
