// Tests for the differential conformance harness (src/oracle/conformance).
//
// The sweep test is the repo's standing cross-check that the production
// reasoner agrees with the brute-force oracle, the LN baseline and the
// metamorphic contracts; the injected-bug test proves the harness has
// teeth (a flipped verdict IS caught and minimized). CI runs bigger
// sweeps through `crsat_cli conform`.

#include <gtest/gtest.h>

#include "src/cr/schema_text.h"
#include "src/oracle/conformance.h"

namespace crsat {
namespace {

ConformanceOptions SmallSweep() {
  ConformanceOptions options;
  options.num_seeds = 40;
  options.oracle.max_domain = 4;
  options.num_classes = 4;
  options.num_relationships = 2;
  return options;
}

TEST(Conformance, SweepFindsNoDisagreements) {
  Result<ConformanceReport> report = RunConformance(SmallSweep());
  ASSERT_TRUE(report.ok()) << report.status();
  for (const ConformanceDisagreement& d : report->disagreements) {
    ADD_FAILURE() << "seed " << d.seed << " [" << d.kind << "] "
                  << d.class_name << ": " << d.detail << "\n"
                  << d.schema_text;
  }
  // Zero disagreements over zero comparisons proves nothing: insist the
  // sweep actually exercised every cross-check.
  EXPECT_EQ(report->schemas_checked, 40);
  EXPECT_GT(report->class_verdicts_compared, 0);
  EXPECT_GT(report->sat_confirmed_by_oracle, 0);
  EXPECT_GT(report->unsat_consistent_up_to_bound, 0);
  EXPECT_GT(report->baseline_schemas, 0);
  EXPECT_GT(report->metamorphic_mutants, 0);
  EXPECT_GT(report->witnesses_certified, 0);
}

TEST(Conformance, InjectedReasonerBugIsCaught) {
  ConformanceOptions options = SmallSweep();
  options.num_seeds = 10;
  // Simulate a reasoner bug: flip the verdict of class 0 on every
  // original schema. Either direction of flip must be caught — as a
  // soundness conflict with the oracle's certified model, as a witness
  // fitting the bounds the oracle missed, or as a metamorphic violation.
  options.inject_flip_class = 0;
  Result<ConformanceReport> report = RunConformance(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->disagreements.empty());
}

TEST(Conformance, DisagreementsAreMinimizedAndReparseable) {
  ConformanceOptions options = SmallSweep();
  options.num_seeds = 6;
  options.inject_flip_class = 0;
  Result<ConformanceReport> report = RunConformance(options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->disagreements.empty());
  bool any_minimized = false;
  for (const ConformanceDisagreement& d : report->disagreements) {
    // Every reported schema must reproduce from its text alone.
    EXPECT_TRUE(ParseSchema(d.schema_text).ok()) << d.schema_text;
    if (!d.minimized_schema_text.empty()) {
      any_minimized = true;
      EXPECT_TRUE(ParseSchema(d.minimized_schema_text).ok())
          << d.minimized_schema_text;
      // Minimization must not grow the schema.
      EXPECT_LE(d.minimized_schema_text.size(), d.schema_text.size());
    }
  }
  EXPECT_TRUE(any_minimized);
}

TEST(Conformance, ReportSerializesToJson) {
  ConformanceOptions options = SmallSweep();
  options.num_seeds = 3;
  Result<ConformanceReport> report = RunConformance(options);
  ASSERT_TRUE(report.ok()) << report.status();
  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"schemas_checked\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"disagreements\": []"), std::string::npos) << json;
  EXPECT_FALSE(report->Summary().empty());
}

}  // namespace
}  // namespace crsat
