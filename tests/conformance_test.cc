// Tests for the differential conformance harness (src/oracle/conformance).
//
// The sweep test is the repo's standing cross-check that the production
// reasoner agrees with the brute-force oracle, the LN baseline and the
// metamorphic contracts; the injected-bug test proves the harness has
// teeth (a flipped verdict IS caught and minimized). CI runs bigger
// sweeps through `crsat_cli conform`.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/cr/model_checker.h"
#include "src/cr/schema_text.h"
#include "src/expansion/expansion.h"
#include "src/oracle/conformance.h"
#include "src/reasoner/satisfiability.h"

namespace crsat {
namespace {

std::string ReadSchemaFile(const std::string& name) {
  const std::string path =
      std::string(CRSAT_SOURCE_DIR) + "/examples/schemas/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

ConformanceOptions SmallSweep() {
  ConformanceOptions options;
  options.num_seeds = 40;
  options.oracle.max_domain = 4;
  options.num_classes = 4;
  options.num_relationships = 2;
  return options;
}

TEST(Conformance, SweepFindsNoDisagreements) {
  Result<ConformanceReport> report = RunConformance(SmallSweep());
  ASSERT_TRUE(report.ok()) << report.status();
  for (const ConformanceDisagreement& d : report->disagreements) {
    ADD_FAILURE() << "seed " << d.seed << " [" << d.kind << "] "
                  << d.class_name << ": " << d.detail << "\n"
                  << d.schema_text;
  }
  // Zero disagreements over zero comparisons proves nothing: insist the
  // sweep actually exercised every cross-check.
  EXPECT_EQ(report->schemas_checked, 40);
  EXPECT_GT(report->class_verdicts_compared, 0);
  EXPECT_GT(report->sat_confirmed_by_oracle, 0);
  EXPECT_GT(report->unsat_consistent_up_to_bound, 0);
  EXPECT_GT(report->baseline_schemas, 0);
  EXPECT_GT(report->metamorphic_mutants, 0);
  EXPECT_GT(report->witnesses_certified, 0);
}

TEST(Conformance, InjectedReasonerBugIsCaught) {
  ConformanceOptions options = SmallSweep();
  options.num_seeds = 10;
  // Simulate a reasoner bug: flip the verdict of class 0 on every
  // original schema. Either direction of flip must be caught — as a
  // soundness conflict with the oracle's certified model, as a witness
  // fitting the bounds the oracle missed, or as a metamorphic violation.
  options.inject_flip_class = 0;
  Result<ConformanceReport> report = RunConformance(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->disagreements.empty());
}

TEST(Conformance, DisagreementsAreMinimizedAndReparseable) {
  ConformanceOptions options = SmallSweep();
  options.num_seeds = 6;
  options.inject_flip_class = 0;
  Result<ConformanceReport> report = RunConformance(options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->disagreements.empty());
  bool any_minimized = false;
  for (const ConformanceDisagreement& d : report->disagreements) {
    // Every reported schema must reproduce from its text alone.
    EXPECT_TRUE(ParseSchema(d.schema_text).ok()) << d.schema_text;
    if (!d.minimized_schema_text.empty()) {
      any_minimized = true;
      EXPECT_TRUE(ParseSchema(d.minimized_schema_text).ok())
          << d.minimized_schema_text;
      // Minimization must not grow the schema.
      EXPECT_LE(d.minimized_schema_text.size(), d.schema_text.size());
    }
  }
  EXPECT_TRUE(any_minimized);
}

TEST(Conformance, ReportSerializesToJson) {
  ConformanceOptions options = SmallSweep();
  options.num_seeds = 3;
  Result<ConformanceReport> report = RunConformance(options);
  ASSERT_TRUE(report.ok()) << report.status();
  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"schemas_checked\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"disagreements\": []"), std::string::npos) << json;
  EXPECT_FALSE(report->Summary().empty());
}

// --- The three-way vote: reasoner vs oracle vs saturation -----------------

TEST(Conformance, ThreeWaySweepFindsNoDisagreements) {
  // The PR's acceptance sweep, run in-process: 200 seeds at oracle bound
  // 6 with all three engines voting (`crsat_cli conform --seeds 200
  // --bound 6 --engines reasoner,oracle,saturation` is the CLI spelling).
  ConformanceOptions options;
  options.num_seeds = 200;
  options.oracle.max_domain = 6;
  Result<ConformanceReport> report = RunConformance(options);
  ASSERT_TRUE(report.ok()) << report.status();
  for (const ConformanceDisagreement& d : report->disagreements) {
    ADD_FAILURE() << "seed " << d.seed << " [" << d.kind << "] "
                  << d.class_name << ": " << d.detail << "\n"
                  << d.schema_text;
  }
  // The saturation voter must have actually voted, in every direction.
  EXPECT_GT(report->saturation_models_certified, 0);
  EXPECT_GT(report->sat_confirmed_by_saturation, 0);
  EXPECT_GT(report->unsat_confirmed_by_saturation, 0);
  // Random schemas at these densities reliably include finitely-unsat
  // ones; the contrast verdict is expected business, not a disagreement.
  EXPECT_GT(report->infinite_model_contrasts, 0);
  EXPECT_EQ(report->saturation_unknown, 0);
}

// --- Curated finitely-unsat contrast cases --------------------------------

struct ContrastCase {
  const char* file;
  std::vector<const char*> contrast_classes;
};

const ContrastCase kContrastCases[] = {
    {"finitely_unsat_binary_tree.cr", {"C"}},
    {"finitely_unsat_pair.cr", {"C", "D"}},
    {"finitely_unsat_chain.cr", {"A", "B", "C"}},
    {"finitely_unsat_ternary.cr", {"C", "D"}},
};

TEST(Conformance, CuratedSchemasYieldTheContrastVerdict) {
  // Each curated schema replays the paper's Figure 1 phenomenon: the
  // reasoner (finite-model semantics) rejects the class, saturation
  // exhibits a valid cyclic graph (classical semantics), and unraveling
  // a finite prefix of that graph violates nothing but cardinality —
  // the frontier's unpaid minimum debts that only an infinite model can
  // settle.
  for (const ContrastCase& contrast : kContrastCases) {
    SCOPED_TRACE(contrast.file);
    Result<NamedSchema> parsed = ParseSchema(ReadSchemaFile(contrast.file));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const Schema& schema = parsed->schema;
    Expansion expansion = Expansion::Build(schema).value();
    SatisfiabilityChecker checker(expansion);
    std::vector<bool> finitely_sat = checker.SatisfiableClasses().value();
    for (const char* name : contrast.contrast_classes) {
      SCOPED_TRACE(name);
      const ClassId cls = schema.FindClass(name).value();
      EXPECT_FALSE(finitely_sat[cls.value])
          << "reasoner should reject the class under finite-model "
             "semantics";
      SaturationClassResult result =
          SaturationEngine::DecideClass(schema, cls);
      ASSERT_EQ(result.verdict, SaturationVerdict::kSatWithReuse);
      EXPECT_TRUE(
          ValidateSaturationGraph(schema, result.graph, cls).empty());
      Result<Interpretation> prefix =
          UnravelPrefix(schema, result.graph, /*max_individuals=*/32);
      ASSERT_TRUE(prefix.ok()) << prefix.status();
      std::vector<ModelViolation> violations =
          ModelChecker::CheckModel(schema, *prefix);
      ASSERT_FALSE(violations.empty());
      for (const ModelViolation& violation : violations) {
        EXPECT_EQ(violation.kind, ModelViolation::Kind::kCardinality)
            << violation.message;
      }
    }
  }
}

TEST(Conformance, CuratedSchemasCountAsContrastsNotDisagreements) {
  // Through the full harness the curated schemas must produce exactly
  // the 8 per-class contrast verdicts (1 + 2 + 3 + 2) and nothing in the
  // disagreement ledger; the ternary schema's E keeps a plain finite
  // model, proving the contrast hits only the finitely-empty classes.
  ConformanceOptions options;
  options.num_seeds = 0;
  options.check_metamorphic = false;
  options.minimize = false;
  for (const ContrastCase& contrast : kContrastCases) {
    options.extra_schema_texts.push_back(ReadSchemaFile(contrast.file));
  }
  Result<ConformanceReport> report = RunConformance(options);
  ASSERT_TRUE(report.ok()) << report.status();
  for (const ConformanceDisagreement& d : report->disagreements) {
    ADD_FAILURE() << "[" << d.kind << "] " << d.class_name << ": "
                  << d.detail;
  }
  EXPECT_EQ(report->schemas_checked, 4);
  EXPECT_EQ(report->infinite_model_contrasts, 8);
  EXPECT_GT(report->saturation_models_certified, 0);  // Ternary's E.
}

// --- Mutation tests: the harness catches a broken saturation engine -------

TEST(Conformance, WeakenedMergeRuleIsFlaggedAsMissedViolation) {
  // Drop the max-cardinality check from the merge rule and the engine
  // hands the harness a bogus finite model of a finitely-unsat schema;
  // the harness-level ModelChecker re-judging must flag it rather than
  // trust the engine's own (also weakened) certification.
  ConformanceOptions options;
  options.num_seeds = 0;
  options.check_metamorphic = false;
  options.minimize = false;
  options.extra_schema_texts.push_back(
      ReadSchemaFile("finitely_unsat_binary_tree.cr"));
  options.saturation.weaken_merge_rule = true;
  Result<ConformanceReport> report = RunConformance(options);
  ASSERT_TRUE(report.ok()) << report.status();
  bool flagged = false;
  for (const ConformanceDisagreement& d : report->disagreements) {
    flagged = flagged || d.kind == "saturation-missed-violation";
  }
  EXPECT_TRUE(flagged)
      << "weakened merge rule was not caught; harness has no teeth";
}

TEST(Conformance, OverEagerBlockingIsFlaggedAgainstTheOracle) {
  // Over-eager blocking claims sat-with-reuse on a classically
  // unsatisfiable class. The graph validator rejects the exhibit, and
  // with the oracle confirming unsat the harness reports the claim as a
  // disagreement instead of counting a contrast.
  ConformanceOptions options;
  options.num_seeds = 0;
  options.check_metamorphic = false;
  options.minimize = false;
  options.extra_schema_texts.push_back(
      "schema Nested {\n"
      "  class A, B, C;\n"
      "  isa B < C;\n"
      "  relationship R(V1: A, V2: B);\n"
      "  card A in R.V1 = (1, *);\n"
      "  relationship S(W1: C, W2: A);\n"
      "  card C in S.W1 = (3, *);\n"
      "  card B in S.W1 = (0, 1);\n"
      "}\n");
  options.saturation.overeager_blocking = true;
  Result<ConformanceReport> report = RunConformance(options);
  ASSERT_TRUE(report.ok()) << report.status();
  bool flagged = false;
  for (const ConformanceDisagreement& d : report->disagreements) {
    flagged = flagged || d.kind == "saturation-claims-sat-oracle-unsat";
  }
  EXPECT_TRUE(flagged)
      << "over-eager blocking was not caught; harness has no teeth";
}

}  // namespace
}  // namespace crsat
