#include "src/generator/random_schema.h"

#include <gtest/gtest.h>

#include "src/cr/schema_text.h"

namespace crsat {
namespace {

TEST(RandomSchemaTest, DefaultParamsProduceWellFormedSchema) {
  Schema schema = GenerateRandomSchema(RandomSchemaParams{}).value();
  EXPECT_EQ(schema.num_classes(), 6);
  EXPECT_EQ(schema.num_relationships(), 3);
  for (RelationshipId rel : schema.AllRelationships()) {
    EXPECT_GE(schema.RolesOf(rel).size(), 2u);
  }
}

TEST(RandomSchemaTest, DeterministicInSeed) {
  RandomSchemaParams params;
  params.seed = 42;
  Schema a = GenerateRandomSchema(params).value();
  Schema b = GenerateRandomSchema(params).value();
  EXPECT_EQ(SchemaToText(a, "X"), SchemaToText(b, "X"));
  params.seed = 43;
  Schema c = GenerateRandomSchema(params).value();
  EXPECT_NE(SchemaToText(a, "X"), SchemaToText(c, "X"));
}

TEST(RandomSchemaTest, IsaEdgesAreAcyclic) {
  RandomSchemaParams params;
  params.seed = 7;
  params.num_classes = 10;
  params.isa_density = 0.5;
  Schema schema = GenerateRandomSchema(params).value();
  for (const IsaStatement& isa : schema.isa_statements()) {
    EXPECT_LT(isa.subclass.value, isa.superclass.value);
  }
}

TEST(RandomSchemaTest, RefinementsTargetGenuineSubclasses) {
  RandomSchemaParams params;
  params.seed = 13;
  params.num_classes = 8;
  params.isa_density = 0.4;
  params.refinement_probability = 1.0;
  Schema schema = GenerateRandomSchema(params).value();
  for (const CardinalityDeclaration& decl :
       schema.cardinality_declarations()) {
    EXPECT_TRUE(schema.IsSubclassOf(decl.cls, schema.PrimaryClass(decl.role)));
  }
}

TEST(RandomSchemaTest, ArityRangeRespected) {
  RandomSchemaParams params;
  params.seed = 3;
  params.min_arity = 3;
  params.max_arity = 4;
  Schema schema = GenerateRandomSchema(params).value();
  for (RelationshipId rel : schema.AllRelationships()) {
    EXPECT_GE(schema.RolesOf(rel).size(), 3u);
    EXPECT_LE(schema.RolesOf(rel).size(), 4u);
  }
}

TEST(RandomSchemaTest, DisjointnessGroupsGenerated) {
  RandomSchemaParams params;
  params.seed = 5;
  params.num_classes = 8;
  params.isa_density = 0.0;
  params.num_disjointness_groups = 3;
  params.disjointness_group_size = 3;
  Schema schema = GenerateRandomSchema(params).value();
  EXPECT_EQ(schema.disjointness_constraints().size(), 3u);
  for (const DisjointnessConstraint& group :
       schema.disjointness_constraints()) {
    EXPECT_EQ(group.classes.size(), 3u);
  }
}

TEST(RandomSchemaTest, InvalidParamsRejected) {
  RandomSchemaParams no_classes;
  no_classes.num_classes = 0;
  EXPECT_FALSE(GenerateRandomSchema(no_classes).ok());
  RandomSchemaParams bad_arity;
  bad_arity.min_arity = 1;
  EXPECT_FALSE(GenerateRandomSchema(bad_arity).ok());
  RandomSchemaParams inverted_arity;
  inverted_arity.min_arity = 3;
  inverted_arity.max_arity = 2;
  EXPECT_FALSE(GenerateRandomSchema(inverted_arity).ok());
}

// Golden digest over a parameter sweep. The generator draws through
// DeterministicRng (src/generator/deterministic.h), whose bounded-draw
// algorithm is pinned down to the bit — unlike
// std::uniform_int_distribution, whose mapping from engine output to
// range is implementation-defined and differs across standard libraries.
// This digest is therefore a *cross-platform* contract: the same seed
// must produce byte-identical schemas on every toolchain, or committed
// seeds (fuzz corpora, conformance repro commands, benchmark inputs)
// silently mean different schemas on different machines. If this test
// fails, the generator's output changed: bump the expected digest ONLY if
// that was intentional, and say so in the commit message.
TEST(RandomSchemaTest, GoldenDigestIsStableAcrossPlatforms) {
  std::uint64_t digest = 14695981039346656037ull;  // FNV-1a offset basis.
  auto absorb = [&digest](const std::string& text) {
    for (unsigned char c : text) {
      digest ^= c;
      digest *= 1099511628211ull;  // FNV-1a prime.
    }
  };
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    RandomSchemaParams params;
    params.seed = seed;
    params.num_classes = 5;
    params.num_relationships = 3;
    params.isa_density = 0.3;
    params.refinement_probability = 0.4;
    params.num_disjointness_groups = static_cast<int>(seed % 2);
    absorb(SchemaToText(GenerateRandomSchema(params).value(),
                        "golden" + std::to_string(seed)));
  }
  EXPECT_EQ(digest, 4793896845200224457ull);
}

// One exact-text golden so a digest mismatch has a readable diff.
TEST(RandomSchemaTest, GoldenTextSeed42) {
  RandomSchemaParams params;
  params.seed = 42;
  params.num_classes = 3;
  params.num_relationships = 2;
  params.isa_density = 0.4;
  const std::string expected =
      "schema golden {\n"
      "  class C0;\n"
      "  class C1;\n"
      "  class C2;\n"
      "  isa C0 < C1;\n"
      "  relationship R0(R0_U0: C2, R0_U1: C2);\n"
      "  relationship R1(R1_U0: C1, R1_U1: C1);\n"
      "  card C2 in R0.R0_U0 = (1, *);\n"
      "  card C2 in R0.R0_U1 = (0, *);\n"
      "  card C1 in R1.R1_U0 = (2, 2);\n"
      "  card C0 in R1.R1_U0 = (2, 4);\n"
      "  card C1 in R1.R1_U1 = (0, *);\n"
      "}\n";
  EXPECT_EQ(SchemaToText(GenerateRandomSchema(params).value(), "golden"),
            expected);
}

TEST(RandomSchemaTest, ManySeedsAllBuild) {
  for (std::uint32_t seed = 0; seed < 50; ++seed) {
    RandomSchemaParams params;
    params.seed = seed;
    params.num_classes = 5;
    params.num_relationships = 4;
    params.isa_density = 0.3;
    params.refinement_probability = 0.5;
    Result<Schema> schema = GenerateRandomSchema(params);
    EXPECT_TRUE(schema.ok()) << "seed " << seed << ": "
                             << schema.status().message();
  }
}

}  // namespace
}  // namespace crsat
