#include "src/generator/random_schema.h"

#include <gtest/gtest.h>

#include "src/cr/schema_text.h"

namespace crsat {
namespace {

TEST(RandomSchemaTest, DefaultParamsProduceWellFormedSchema) {
  Schema schema = GenerateRandomSchema(RandomSchemaParams{}).value();
  EXPECT_EQ(schema.num_classes(), 6);
  EXPECT_EQ(schema.num_relationships(), 3);
  for (RelationshipId rel : schema.AllRelationships()) {
    EXPECT_GE(schema.RolesOf(rel).size(), 2u);
  }
}

TEST(RandomSchemaTest, DeterministicInSeed) {
  RandomSchemaParams params;
  params.seed = 42;
  Schema a = GenerateRandomSchema(params).value();
  Schema b = GenerateRandomSchema(params).value();
  EXPECT_EQ(SchemaToText(a, "X"), SchemaToText(b, "X"));
  params.seed = 43;
  Schema c = GenerateRandomSchema(params).value();
  EXPECT_NE(SchemaToText(a, "X"), SchemaToText(c, "X"));
}

TEST(RandomSchemaTest, IsaEdgesAreAcyclic) {
  RandomSchemaParams params;
  params.seed = 7;
  params.num_classes = 10;
  params.isa_density = 0.5;
  Schema schema = GenerateRandomSchema(params).value();
  for (const IsaStatement& isa : schema.isa_statements()) {
    EXPECT_LT(isa.subclass.value, isa.superclass.value);
  }
}

TEST(RandomSchemaTest, RefinementsTargetGenuineSubclasses) {
  RandomSchemaParams params;
  params.seed = 13;
  params.num_classes = 8;
  params.isa_density = 0.4;
  params.refinement_probability = 1.0;
  Schema schema = GenerateRandomSchema(params).value();
  for (const CardinalityDeclaration& decl :
       schema.cardinality_declarations()) {
    EXPECT_TRUE(schema.IsSubclassOf(decl.cls, schema.PrimaryClass(decl.role)));
  }
}

TEST(RandomSchemaTest, ArityRangeRespected) {
  RandomSchemaParams params;
  params.seed = 3;
  params.min_arity = 3;
  params.max_arity = 4;
  Schema schema = GenerateRandomSchema(params).value();
  for (RelationshipId rel : schema.AllRelationships()) {
    EXPECT_GE(schema.RolesOf(rel).size(), 3u);
    EXPECT_LE(schema.RolesOf(rel).size(), 4u);
  }
}

TEST(RandomSchemaTest, DisjointnessGroupsGenerated) {
  RandomSchemaParams params;
  params.seed = 5;
  params.num_classes = 8;
  params.isa_density = 0.0;
  params.num_disjointness_groups = 3;
  params.disjointness_group_size = 3;
  Schema schema = GenerateRandomSchema(params).value();
  EXPECT_EQ(schema.disjointness_constraints().size(), 3u);
  for (const DisjointnessConstraint& group :
       schema.disjointness_constraints()) {
    EXPECT_EQ(group.classes.size(), 3u);
  }
}

TEST(RandomSchemaTest, InvalidParamsRejected) {
  RandomSchemaParams no_classes;
  no_classes.num_classes = 0;
  EXPECT_FALSE(GenerateRandomSchema(no_classes).ok());
  RandomSchemaParams bad_arity;
  bad_arity.min_arity = 1;
  EXPECT_FALSE(GenerateRandomSchema(bad_arity).ok());
  RandomSchemaParams inverted_arity;
  inverted_arity.min_arity = 3;
  inverted_arity.max_arity = 2;
  EXPECT_FALSE(GenerateRandomSchema(inverted_arity).ok());
}

TEST(RandomSchemaTest, ManySeedsAllBuild) {
  for (std::uint32_t seed = 0; seed < 50; ++seed) {
    RandomSchemaParams params;
    params.seed = seed;
    params.num_classes = 5;
    params.num_relationships = 4;
    params.isa_density = 0.3;
    params.refinement_probability = 0.5;
    Result<Schema> schema = GenerateRandomSchema(params);
    EXPECT_TRUE(schema.ok()) << "seed " << seed << ": "
                             << schema.status().message();
  }
}

}  // namespace
}  // namespace crsat
