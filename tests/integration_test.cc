// End-to-end pipeline tests: DSL text -> schema -> expansion -> system ->
// satisfiability -> model / implication / debugging, retracing the paper's
// whole narrative on its own examples.

#include <gtest/gtest.h>

#include "src/crsat.h"

namespace crsat {
namespace {

constexpr char kMeetingText[] = R"(
schema Meeting {
  class Speaker, Discussant, Talk;
  isa Discussant < Speaker;
  relationship Holds(U1: Speaker, U2: Talk);
  relationship Participates(U3: Discussant, U4: Talk);
  card Speaker in Holds.U1 = (1, *);
  card Discussant in Holds.U1 = (0, 2);
  card Talk in Holds.U2 = (1, 1);
  card Discussant in Participates.U3 = (1, 1);
  card Talk in Participates.U4 = (1, *);
}
)";

TEST(IntegrationTest, PaperNarrativeEndToEnd) {
  // Section 2: parse the schema of Figure 3.
  NamedSchema parsed = ParseSchema(kMeetingText).value();
  const Schema& schema = parsed.schema;

  // Section 3.1: the expansion of Figure 4.
  Expansion expansion = Expansion::Build(schema).value();
  EXPECT_EQ(expansion.classes().size(), 5u);
  EXPECT_EQ(expansion.relationships().size(), 18u);

  // Section 3.2: the disequation system of Figure 5 (consistent part).
  SatisfiabilityChecker checker(expansion);
  EXPECT_EQ(checker.cr_system().system.num_variables(), 23);

  // Section 3.3 / Theorem 3.3: Speaker is satisfiable; Figure 6's model.
  ClassId speaker = schema.FindClass("Speaker").value();
  EXPECT_TRUE(checker.IsClassSatisfiable(speaker).value());
  Interpretation model =
      ModelBuilder::BuildModelForClass(checker, speaker).value();
  EXPECT_TRUE(ModelChecker::IsModel(schema, model));
  EXPECT_FALSE(model.ClassExtension(speaker).empty());

  // Section 4 / Figure 7: the three inferences.
  ClassId discussant = schema.FindClass("Discussant").value();
  ClassId talk = schema.FindClass("Talk").value();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RelationshipId participates =
      schema.FindRelationship("Participates").value();
  RoleId u1 = schema.FindRole("U1").value();
  RoleId u4 = schema.FindRole("U4").value();
  EXPECT_TRUE(
      ImplicationChecker::ImpliesIsa(schema, speaker, discussant).value());
  EXPECT_TRUE(ImplicationChecker::ImpliesMaxCardinality(schema, talk,
                                                        participates, u4, 1)
                  .value());
  EXPECT_TRUE(ImplicationChecker::ImpliesMaxCardinality(schema, speaker,
                                                        holds, u1, 1)
                  .value());
}

TEST(IntegrationTest, Section33FollowUpThroughTheDsl) {
  // Adding the eager-discussant refinement through DSL text makes the
  // schema class-unsatisfiable, and the unsat core explains why.
  constexpr char kEagerText[] = R"(
schema EagerMeeting {
  class Speaker, Discussant, Talk;
  isa Discussant < Speaker;
  relationship Holds(U1: Speaker, U2: Talk);
  relationship Participates(U3: Discussant, U4: Talk);
  card Speaker in Holds.U1 = (1, *);
  card Discussant in Holds.U1 = (2, 2);
  card Talk in Holds.U2 = (1, 1);
  card Discussant in Participates.U3 = (1, 1);
  card Talk in Participates.U4 = (1, *);
}
)";
  NamedSchema parsed = ParseSchema(kEagerText).value();
  const Schema& schema = parsed.schema;
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  ClassId speaker = schema.FindClass("Speaker").value();
  EXPECT_FALSE(checker.IsClassSatisfiable(speaker).value());
  UnsatCore core = MinimizeUnsatCore(schema, speaker).value();
  EXPECT_FALSE(core.constraints.empty());
  // The eager refinement is part of every explanation.
  bool mentions_refinement = false;
  for (const CoreConstraint& constraint : core.constraints) {
    if (constraint.description.find("(2, 2)") != std::string::npos) {
      mentions_refinement = true;
    }
  }
  EXPECT_TRUE(mentions_refinement);
}

TEST(IntegrationTest, Figure1ThroughTheDsl) {
  constexpr char kFigure1Text[] = R"(
schema Figure1 {
  class C, D;
  isa D < C;
  relationship R(V1: C, V2: D);
  card C in R.V1 = (2, *);
  card D in R.V2 = (0, 1);
}
)";
  NamedSchema parsed = ParseSchema(kFigure1Text).value();
  Expansion expansion = Expansion::Build(parsed.schema).value();
  SatisfiabilityChecker checker(expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  EXPECT_FALSE(satisfiable[0]);
  EXPECT_FALSE(satisfiable[1]);
}

TEST(IntegrationTest, Section5DisjointnessShrinksSystemWithoutChangingVerdicts) {
  // The paper's closing observation: declaring Speaker and Talk disjoint
  // "leads to a system of disequations with just a few unknowns".
  NamedSchema parsed = ParseSchema(kMeetingText).value();
  SchemaBuilder builder = parsed.schema.ToBuilder();
  builder.AddDisjointness({"Speaker", "Talk"});
  Schema pruned_schema = builder.Build().value();

  Expansion full = Expansion::Build(parsed.schema).value();
  Expansion pruned = Expansion::Build(pruned_schema).value();
  SatisfiabilityChecker full_checker(full);
  SatisfiabilityChecker pruned_checker(pruned);
  EXPECT_LT(pruned_checker.cr_system().system.num_variables(),
            full_checker.cr_system().system.num_variables());
  // The verdicts for the meeting schema do not depend on speaker/talk
  // overlap: all classes stay satisfiable.
  EXPECT_EQ(full_checker.SatisfiableClasses().value(),
            pruned_checker.SatisfiableClasses().value());
}

TEST(IntegrationTest, RoundTripModelThroughToString) {
  NamedSchema parsed = ParseSchema(kMeetingText).value();
  Expansion expansion = Expansion::Build(parsed.schema).value();
  SatisfiabilityChecker checker(expansion);
  ClassId talk = parsed.schema.FindClass("Talk").value();
  Interpretation model =
      ModelBuilder::BuildModelForClass(checker, talk).value();
  std::string rendered = model.ToString();
  EXPECT_NE(rendered.find("Speaker = {"), std::string::npos);
  EXPECT_NE(rendered.find("Holds = {"), std::string::npos);
}

TEST(IntegrationTest, ObjectOrientedReadingOfTheModel) {
  // Section 1: "by interpreting relationships as attributes, we directly
  // derive a method applicable to object-oriented data models". An OO
  // class with a mandatory single-valued attribute is a binary
  // relationship with (1,1) on the owner side.
  constexpr char kOoText[] = R"(
schema OoExample {
  class Object, Employee, Manager, Department;
  isa Employee < Object;
  isa Manager < Employee;
  relationship DeptAttr(owner: Employee, value: Department);
  card Employee in DeptAttr.owner = (1, 1);
  // Managers additionally head a department; every department has
  // exactly one head, and heads manage at most two departments.
  relationship HeadsAttr(head: Manager, headed: Department);
  card Manager in HeadsAttr.head = (1, 2);
  card Department in HeadsAttr.headed = (1, 1);
}
)";
  NamedSchema parsed = ParseSchema(kOoText).value();
  Expansion expansion = Expansion::Build(parsed.schema).value();
  SatisfiabilityChecker checker(expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  for (int c = 0; c < parsed.schema.num_classes(); ++c) {
    EXPECT_TRUE(satisfiable[c]) << parsed.schema.ClassName(ClassId(c));
  }
  // Implied: at least half as many managers as departments... expressed as
  // a cardinality inference: a department's head attribute is mandatory.
  ClassId manager = parsed.schema.FindClass("Manager").value();
  RelationshipId heads = parsed.schema.FindRelationship("HeadsAttr").value();
  RoleId head_role = parsed.schema.FindRole("head").value();
  EXPECT_TRUE(ImplicationChecker::ImpliesMinCardinality(
                  parsed.schema, manager, heads, head_role, 1)
                  .value());
}

}  // namespace
}  // namespace crsat
