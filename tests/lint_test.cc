// Tests for the structural diagnostics engine (src/analysis/): one
// positive and one negative schema per lint rule, the empty-class
// fixpoint, source-position plumbing, the registry, and a sweep asserting
// the expected diagnostic set for every schema shipped in
// examples/schemas/.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/crsat.h"

namespace crsat {
namespace {

NamedSchema ParseLenient(std::string_view text) {
  ParseSchemaOptions options;
  options.permit_empty_ranges = true;
  Result<NamedSchema> parsed = ParseSchema(text, options);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return *std::move(parsed);
}

std::vector<Diagnostic> Lint(std::string_view text) {
  return RunLint(ParseLenient(text));
}

std::multiset<std::string> RuleIds(const std::vector<Diagnostic>& diags) {
  std::multiset<std::string> ids;
  for (const Diagnostic& d : diags) {
    ids.insert(d.rule);
  }
  return ids;
}

bool HasRule(const std::vector<Diagnostic>& diags, std::string_view rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

const Diagnostic& FindRule(const std::vector<Diagnostic>& diags,
                           std::string_view rule) {
  auto it = std::find_if(diags.begin(), diags.end(),
                         [&](const Diagnostic& d) { return d.rule == rule; });
  EXPECT_TRUE(it != diags.end()) << "no diagnostic for rule " << rule;
  return *it;
}

// --- isa-cycle ---

TEST(IsaCycleRuleTest, ReportsCycleMembersOnce) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B, C, D;
      isa A < B;
      isa B < C;
      isa C < A;
      isa C < D;
      relationship R(u: A, v: D);
    })");
  ASSERT_TRUE(HasRule(diags, "isa-cycle"));
  const Diagnostic& d = FindRule(diags, "isa-cycle");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.entities, (std::vector<std::string>{"A", "B", "C"}));
  // Exactly one report for the whole cycle, not one per member.
  EXPECT_EQ(RuleIds(diags).count("isa-cycle"), 1u);
}

TEST(IsaCycleRuleTest, ChainIsNotACycle) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B, C;
      isa A < B;
      isa B < C;
      relationship R(u: A, v: C);
    })");
  EXPECT_FALSE(HasRule(diags, "isa-cycle"));
}

TEST(IsaCycleRuleTest, SelfIsaReported) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B;
      isa A < A;
      relationship R(u: A, v: B);
    })");
  EXPECT_TRUE(HasRule(diags, "isa-cycle"));
}

// --- empty-range ---

TEST(EmptyRangeRuleTest, ReportsMinAboveMax) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B;
      relationship R(u: A, v: B);
      card A in R.u = (3, 2);
    })");
  const Diagnostic& d = FindRule(diags, "empty-range");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.entities, (std::vector<std::string>{"A", "R", "u"}));
}

TEST(EmptyRangeRuleTest, ProperRangeClean) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B;
      relationship R(u: A, v: B);
      card A in R.u = (2, 3);
      card B in R.v = (1, 1);
    })");
  EXPECT_FALSE(HasRule(diags, "empty-range"));
  EXPECT_TRUE(diags.empty());
}

TEST(EmptyRangeRuleTest, StrictParseStillRejectsEmptyRanges) {
  Result<NamedSchema> parsed = ParseSchema(R"(
    schema S {
      class A, B;
      relationship R(u: A, v: B);
      card A in R.u = (3, 2);
    })");
  EXPECT_FALSE(parsed.ok());
}

// --- card-refinement-conflict ---

TEST(CardRefinementConflictRuleTest, InheritedMinExceedsOwnMax) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class Employee, Senior, Task;
      isa Senior < Employee;
      relationship Owns(owner: Employee, task: Task);
      card Employee in Owns.owner = (2, *);
      card Senior in Owns.owner = (0, 1);
    })");
  const Diagnostic& d = FindRule(diags, "card-refinement-conflict");
  EXPECT_EQ(d.severity, Severity::kError);
  // Conflicted class, min-side declaration holder, max-side holder, role.
  EXPECT_EQ(d.entities, (std::vector<std::string>{"Senior", "Employee",
                                                  "Senior", "owner"}));
}

TEST(CardRefinementConflictRuleTest, CompatibleRefinementClean) {
  // The paper's meeting schema: Discussant refines (1,*) to (0,2) — fine.
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class Speaker, Discussant, Talk;
      isa Discussant < Speaker;
      relationship Holds(u1: Speaker, u2: Talk);
      card Speaker in Holds.u1 = (1, 3);
      card Discussant in Holds.u1 = (0, 2);
      card Talk in Holds.u2 = (1, 1);
    })");
  EXPECT_FALSE(HasRule(diags, "card-refinement-conflict"));
}

TEST(CardRefinementConflictRuleTest, ReportedOnceAtTopmostClass) {
  // Junior inherits Senior's conflict; only Senior should be reported.
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class Employee, Senior, Junior, Task;
      isa Senior < Employee;
      isa Junior < Senior;
      relationship Owns(owner: Employee, task: Task);
      card Employee in Owns.owner = (2, *);
      card Senior in Owns.owner = (0, 1);
    })");
  EXPECT_EQ(RuleIds(diags).count("card-refinement-conflict"), 1u);
  EXPECT_EQ(FindRule(diags, "card-refinement-conflict").entities[0], "Senior");
}

TEST(CardRefinementConflictRuleTest, SingleDeclarationLeftToEmptyRange) {
  // A lone (3,2) is an empty range, not a refinement conflict.
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B;
      relationship R(u: A, v: B);
      card A in R.u = (3, 2);
    })");
  EXPECT_TRUE(HasRule(diags, "empty-range"));
  EXPECT_FALSE(HasRule(diags, "card-refinement-conflict"));
}

// --- redundant-isa ---

TEST(RedundantIsaRuleTest, TransitiveShortcutFlagged) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B, C;
      isa A < B;
      isa B < C;
      isa A < C;
      relationship R(u: A, v: C);
    })");
  const Diagnostic& d = FindRule(diags, "redundant-isa");
  EXPECT_EQ(d.severity, Severity::kNote);
  EXPECT_EQ(d.entities, (std::vector<std::string>{"A", "C"}));
  EXPECT_EQ(RuleIds(diags).count("redundant-isa"), 1u);
}

TEST(RedundantIsaRuleTest, DuplicateEdgeFlagged) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B;
      isa A < B;
      isa A < B;
      relationship R(u: A, v: B);
    })");
  // Each copy is implied by the other.
  EXPECT_EQ(RuleIds(diags).count("redundant-isa"), 2u);
}

TEST(RedundantIsaRuleTest, DiamondIsNotRedundant) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class Person, Student, Professor, PhD;
      isa Student < Person;
      isa Professor < Person;
      isa PhD < Student;
      isa PhD < Professor;
      relationship R(u: Person, v: PhD);
    })");
  EXPECT_FALSE(HasRule(diags, "redundant-isa"));
}

// --- unused-class / dangling-role ---

TEST(UnreferencedEntityRuleTest, UnusedClassFlagged) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B, Lost;
      relationship R(u: A, v: B);
      card A in R.u = (1, 1);
      card B in R.v = (1, 1);
    })");
  const Diagnostic& d = FindRule(diags, "unused-class");
  EXPECT_EQ(d.entities, (std::vector<std::string>{"Lost"}));
}

TEST(UnreferencedEntityRuleTest, CovererOnlyClassIsUsed) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B, Extra;
      relationship R(u: A, v: B);
      card A in R.u = (1, 1);
      card B in R.v = (1, 1);
      cover A by Extra;
    })");
  EXPECT_FALSE(HasRule(diags, "unused-class"));
}

TEST(UnreferencedEntityRuleTest, DanglingRoleFlagged) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B;
      relationship R(u: A, v: B);
      card A in R.u = (1, 2);
    })");
  const Diagnostic& d = FindRule(diags, "dangling-role");
  EXPECT_EQ(d.entities, (std::vector<std::string>{"v", "R"}));
}

TEST(UnreferencedEntityRuleTest, SubclassRefinementCountsForTheRole) {
  // `v` is constrained via a subclass refinement, so it does not dangle.
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B, C;
      isa C < B;
      relationship R(u: A, v: B);
      card A in R.u = (1, 2);
      card C in R.v = (0, 5);
    })");
  EXPECT_FALSE(HasRule(diags, "dangling-role"));
}

// --- trivially-unsat-relationship + empty-class fixpoint ---

TEST(TriviallyUnsatRelationshipRuleTest, EmptyPrimaryClassPropagates) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B;
      relationship R(u: A, v: B);
      card A in R.u = (3, 2);
    })");
  const Diagnostic& d = FindRule(diags, "trivially-unsat-relationship");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.entities, (std::vector<std::string>{"R"}));
}

TEST(TriviallyUnsatRelationshipRuleTest, SatisfiableSchemaClean) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B;
      relationship R(u: A, v: B);
      card A in R.u = (1, 2);
      card B in R.v = (1, 1);
    })");
  EXPECT_FALSE(HasRule(diags, "trivially-unsat-relationship"));
}

TEST(EmptyClassAnalysisTest, DisjointnessSeedsEmptiness) {
  NamedSchema parsed = ParseLenient(R"(
    schema S {
      class A, B, C, D;
      isa C < A;
      isa C < B;
      disjoint A, B;
      relationship R(u: C, v: D);
    })");
  EmptyEntityAnalysis analysis = ComputeProvablyEmpty(parsed.schema);
  ClassId c = *parsed.schema.FindClass("C");
  EXPECT_TRUE(analysis.class_empty[c.value]);
  EXPECT_TRUE(analysis.relationship_empty[0]);
  EXPECT_FALSE(analysis.class_empty[parsed.schema.FindClass("A")->value]);
}

TEST(EmptyClassAnalysisTest, MandatoryParticipationInEmptyRelationship) {
  // A is empty by bounds; R needs A; D must participate in R, so D is
  // empty too (two fixpoint steps).
  NamedSchema parsed = ParseLenient(R"(
    schema S {
      class A, D;
      relationship R(u: A, v: D);
      card A in R.u = (3, 2);
      card D in R.v = (1, *);
    })");
  EmptyEntityAnalysis analysis = ComputeProvablyEmpty(parsed.schema);
  EXPECT_TRUE(analysis.class_empty[parsed.schema.FindClass("A")->value]);
  EXPECT_TRUE(analysis.class_empty[parsed.schema.FindClass("D")->value]);
  EXPECT_TRUE(analysis.AnyEmpty());
}

TEST(EmptyClassAnalysisTest, CoveringByEmptyClassesPropagates) {
  NamedSchema parsed = ParseLenient(R"(
    schema S {
      class Covered, E1, E2, Other;
      isa E1 < Covered;
      isa E2 < Covered;
      cover Covered by E1, E2;
      relationship R(u: E1, v: E2);
      card E1 in R.u = (3, 2);
      card E2 in R.v = (5, 1);
      relationship Q(x: Covered, y: Other);
    })");
  EmptyEntityAnalysis analysis = ComputeProvablyEmpty(parsed.schema);
  EXPECT_TRUE(analysis.class_empty[parsed.schema.FindClass("Covered")->value]);
  EXPECT_FALSE(analysis.class_empty[parsed.schema.FindClass("Other")->value]);
}

TEST(EmptyClassAnalysisTest, Figure1IsStructurallyClean) {
  // Figure 1 is finitely unsatisfiable, but only the LP-level reasoning
  // can see it — the structural pass must not claim it.
  NamedSchema parsed = ParseLenient(R"(
    schema Figure1 {
      class C, D;
      isa D < C;
      relationship R(V1: C, V2: D);
      card C in R.V1 = (2, *);
      card D in R.V2 = (0, 1);
    })");
  EXPECT_FALSE(ComputeProvablyEmpty(parsed.schema).AnyEmpty());
}

// --- lifted cardinality helper ---

TEST(LiftCardinalityTest, TracksWitnessDeclarations) {
  NamedSchema parsed = ParseLenient(R"(
    schema S {
      class A, B, T;
      isa B < A;
      relationship R(u: A, v: T);
      card A in R.u = (2, 5);
      card B in R.u = (1, 3);
    })");
  const Schema& schema = parsed.schema;
  LiftedCardinality lifted = LiftCardinality(
      schema, *schema.FindClass("B"), *schema.FindRole("u"));
  EXPECT_EQ(lifted.min, 2u);          // max of mins: A's 2 beats B's 1.
  EXPECT_EQ(lifted.max, std::optional<std::uint64_t>(3));  // min of maxes.
  EXPECT_EQ(lifted.min_decl, 0);
  EXPECT_EQ(lifted.max_decl, 1);
  EXPECT_FALSE(lifted.IsEmptyRange());
}

// --- source locations ---

TEST(SourceMapTest, DiagnosticsPointAtDeclarations) {
  std::vector<Diagnostic> diags = Lint(
      "schema S {\n"
      "  class A, B;\n"
      "  isa A < B;\n"
      "  isa A < B;\n"
      "  relationship R(u: A, v: B);\n"
      "  card A in R.u = (3, 2);\n"
      "}\n");
  const Diagnostic& redundant = FindRule(diags, "redundant-isa");
  EXPECT_EQ(redundant.location.line, 3);
  EXPECT_EQ(redundant.location.column, 3);
  const Diagnostic& empty_range = FindRule(diags, "empty-range");
  EXPECT_EQ(empty_range.location.line, 6);
  EXPECT_EQ(empty_range.location.column, 3);
  EXPECT_EQ(FormatDiagnostic(empty_range, "s.cr").substr(0, 9), "s.cr:6:3:");
}

TEST(SourceMapTest, ParserRecordsEveryDeclarationKind) {
  NamedSchema parsed = ParseLenient(R"(schema S {
    class A, B, C;
    isa B < A;
    relationship R(u: A, v: B);
    card A in R.u = (1, 2);
    disjoint B, C;
    cover A by B, C;
  })");
  const SchemaSourceMap& map = parsed.source_map;
  ASSERT_EQ(map.classes.size(), 3u);
  ASSERT_EQ(map.isa_statements.size(), 1u);
  ASSERT_EQ(map.relationships.size(), 1u);
  ASSERT_EQ(map.roles.size(), 2u);
  ASSERT_EQ(map.cardinality_declarations.size(), 1u);
  ASSERT_EQ(map.disjointness_constraints.size(), 1u);
  ASSERT_EQ(map.covering_constraints.size(), 1u);
  EXPECT_EQ(map.classes[0].line, 2);
  EXPECT_EQ(map.isa_statements[0].line, 3);
  EXPECT_EQ(map.relationships[0].line, 4);
  EXPECT_EQ(map.roles[1].line, 4);
  EXPECT_EQ(map.cardinality_declarations[0].line, 5);
  EXPECT_EQ(map.disjointness_constraints[0].line, 6);
  EXPECT_EQ(map.covering_constraints[0].line, 7);
}

TEST(SourceMapTest, ProgrammaticSchemasLintWithoutLocations) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddRelationship("R", {{"u", "A"}, {"v", "B"}});
  builder.AddIsa("A", "B");
  builder.AddIsa("A", "B");
  Schema schema = builder.Build().value();
  std::vector<Diagnostic> diags = RunLint(schema);
  const Diagnostic& d = FindRule(diags, "redundant-isa");
  EXPECT_FALSE(d.location.IsKnown());
  // Location-free rendering degrades gracefully.
  EXPECT_EQ(FormatDiagnostic(d, "").substr(0, 5), "note:");
}

// --- engine, registry, output ---

TEST(LintEngineTest, RegistryFindsRulesById) {
  LintRuleRegistry registry = LintRuleRegistry::BuiltIn();
  ASSERT_NE(registry.Find("isa-cycle"), nullptr);
  EXPECT_EQ(registry.Find("isa-cycle")->id(), "isa-cycle");
  EXPECT_NE(registry.Find("empty-range"), nullptr);
  EXPECT_NE(registry.Find("card-refinement-conflict"), nullptr);
  EXPECT_NE(registry.Find("redundant-isa"), nullptr);
  EXPECT_NE(registry.Find("trivially-unsat-relationship"), nullptr);
  EXPECT_EQ(registry.Find("no-such-rule"), nullptr);
  EXPECT_EQ(registry.rules().size(), 6u);
}

TEST(LintEngineTest, OptionsFilterByRuleId) {
  NamedSchema parsed = ParseLenient(R"(
    schema S {
      class A, B, Lost;
      relationship R(u: A, v: B);
      card A in R.u = (3, 2);
    })");
  LintOptions options;
  options.rules = {"empty-range"};
  std::vector<Diagnostic> diags = RunLint(parsed.schema, &parsed.source_map,
                                          options);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "empty-range");
}

TEST(LintEngineTest, DiagnosticsSortedBySourcePosition) {
  std::vector<Diagnostic> diags = Lint(
      "schema S {\n"
      "  class A, B, Lost;\n"
      "  isa A < B;\n"
      "  isa A < B;\n"
      "  relationship R(u: A, v: B);\n"
      "  card A in R.u = (3, 2);\n"
      "}\n");
  for (size_t i = 1; i < diags.size(); ++i) {
    EXPECT_LE(diags[i - 1].location.line, diags[i].location.line);
  }
}

TEST(DiagnosticsTest, JsonAndSeverityHelpers) {
  std::vector<Diagnostic> diags = Lint(R"(
    schema S {
      class A, B;
      relationship R(u: A, v: B);
      card A in R.u = (3, 2);
    })");
  EXPECT_TRUE(HasErrors(diags));
  std::string json = DiagnosticsToJson(diags);
  EXPECT_NE(json.find("\"rule\": \"empty-range\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": "), std::string::npos);
  EXPECT_EQ(DiagnosticsToJson({}), "[]");
  EXPECT_FALSE(HasErrors({}));
  EXPECT_STREQ(SeverityToString(Severity::kNote), "note");
  EXPECT_STREQ(SeverityToString(Severity::kWarning), "warning");
  EXPECT_STREQ(SeverityToString(Severity::kError), "error");
}

// --- SatisfiabilityChecker consuming structural hints ---

TEST(StructuralHintsTest, HintedCheckerAgreesWithLp) {
  Result<NamedSchema> parsed = ParseSchema(R"(
    schema S {
      class A, B, C, D;
      isa C < A;
      isa C < B;
      disjoint A, B;
      relationship R(u: C, v: D);
      card D in R.v = (0, 3);
    })");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Schema& schema = parsed->schema;
  Result<Expansion> expansion = Expansion::Build(schema);
  ASSERT_TRUE(expansion.ok());

  SatisfiabilityChecker plain(*expansion);
  SatisfiabilityChecker hinted(*expansion);
  EmptyEntityAnalysis analysis = ComputeProvablyEmpty(schema);
  hinted.SetKnownEmptyClasses(analysis.class_empty);

  for (ClassId cls : schema.AllClasses()) {
    Result<bool> lp = plain.IsClassSatisfiable(cls);
    Result<bool> fast = hinted.IsClassSatisfiable(cls);
    ASSERT_TRUE(lp.ok());
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(*lp, *fast) << "class " << schema.ClassName(cls);
  }
  Result<std::vector<bool>> lp_all = plain.SatisfiableClasses();
  Result<std::vector<bool>> fast_all = hinted.SatisfiableClasses();
  ASSERT_TRUE(lp_all.ok());
  ASSERT_TRUE(fast_all.ok());
  EXPECT_EQ(*lp_all, *fast_all);
  // C is the structurally-empty class; the hint must say unsatisfiable.
  EXPECT_FALSE((*fast_all)[schema.FindClass("C")->value]);
}

TEST(StructuralHintsTest, AllClassesHintedSkipsLpEntirely) {
  Result<NamedSchema> parsed = ParseSchema(R"(
    schema S {
      class A, B;
      isa B < A;
      disjoint A, B;
      relationship R(u: A, v: B);
    })");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Schema& schema = parsed->schema;
  Result<Expansion> expansion = Expansion::Build(schema);
  ASSERT_TRUE(expansion.ok());
  SatisfiabilityChecker checker(*expansion);
  // B <= A with A,B disjoint empties B; hint *every* class as empty to
  // exercise the all-known short-circuit (sound here: A keeps its LP
  // answer irrelevant — we only check the hinted path returns all-false).
  checker.SetKnownEmptyClasses(std::vector<bool>(schema.num_classes(), true));
  Result<std::vector<bool>> all = checker.SatisfiableClasses();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, std::vector<bool>(schema.num_classes(), false));
}

// --- sweep over the shipped example schemas ---

std::string ReadFileOrDie(const std::filesystem::path& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(ExampleSchemasTest, EveryShippedSchemaHasTheExpectedDiagnostics) {
  const std::filesystem::path dir =
      std::filesystem::path(CRSAT_SOURCE_DIR) / "examples" / "schemas";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;

  // Expected rule-id multiset per schema file. State files (the DSL of
  // state_text.h) are skipped below. A new schema added to the directory
  // must be registered here or the test fails.
  const std::map<std::string, std::multiset<std::string>> expected = {
      {"figure1.cr", {}},
      {"meeting.cr", {}},
      {"university.cr", {}},
      {"witness_heavy.cr", {}},
      // The curated finitely-unsat contrast schemas (DESIGN.md §16) are
      // structurally clean by design: their unsatisfiability is the
      // ISA/cardinality interaction itself, not anything lint can see.
      {"finitely_unsat_binary_tree.cr", {}},
      {"finitely_unsat_pair.cr", {}},
      {"finitely_unsat_chain.cr", {}},
      // E's role deliberately has no cardinality declaration — it keeps
      // the class finitely satisfiable next to the contrast core.
      {"finitely_unsat_ternary.cr", {"dangling-role"}},
      {"lint_demo.cr",
       {"isa-cycle", "redundant-isa", "empty-range",
        "card-refinement-conflict", "trivially-unsat-relationship",
        "unused-class", "dangling-role"}},
  };

  int schemas_seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".cr") {
      continue;
    }
    std::string text = ReadFileOrDie(entry.path());
    ParseSchemaOptions options;
    options.permit_empty_ranges = true;
    Result<NamedSchema> parsed = ParseSchema(text, options);
    if (!parsed.ok()) {
      continue;  // A state file, not a schema.
    }
    ++schemas_seen;
    const std::string name = entry.path().filename().string();
    auto it = expected.find(name);
    ASSERT_TRUE(it != expected.end())
        << name << " has no expected diagnostic set registered in this test";
    EXPECT_EQ(RuleIds(RunLint(*parsed)), it->second) << name;
  }
  EXPECT_EQ(schemas_seen, static_cast<int>(expected.size()));
}

}  // namespace
}  // namespace crsat
