#include "src/baseline/ln_reasoner.h"

#include <gtest/gtest.h>

#include "src/expansion/expansion.h"
#include "src/reasoner/satisfiability.h"
#include "tests/test_schemas.h"

namespace crsat {
namespace {

using crsat::testing::EmploymentSchema;
using crsat::testing::IsaFreeUnsatSchema;
using crsat::testing::MeetingSchema;

TEST(LnReasonerTest, RejectsIsaSchemas) {
  Result<LnReasoner> result = LnReasoner::Create(MeetingSchema());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("ISA"), std::string::npos);
}

TEST(LnReasonerTest, RejectsRefinements) {
  // No ISA, but a refinement is impossible without ISA; construct a schema
  // with a declaration on the primary class only -> accepted, then verify
  // the refinement rejection path with a subclass-free schema is
  // unreachable by design (refinements require ISA). Instead check
  // extension rejection.
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "B"}});
  builder.AddDisjointness({"A", "B"});
  Schema schema = builder.Build().value();
  Result<LnReasoner> result = LnReasoner::Create(schema);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("extensions"), std::string::npos);
}

TEST(LnReasonerTest, EmploymentSchemaSatisfiable) {
  Schema schema = EmploymentSchema();
  LnReasoner reasoner = LnReasoner::Create(schema).value();
  EXPECT_TRUE(reasoner
                  .IsClassSatisfiable(schema.FindClass("Employee").value())
                  .value());
  EXPECT_TRUE(reasoner
                  .IsClassSatisfiable(schema.FindClass("Department").value())
                  .value());
  LnReasoner::Solution solution =
      reasoner.AcceptableIntegerSolution().value();
  // |WorksIn| == |Employee| >= 3 |Department|.
  ClassId employee = schema.FindClass("Employee").value();
  ClassId department = schema.FindClass("Department").value();
  RelationshipId works_in = schema.FindRelationship("WorksIn").value();
  EXPECT_EQ(solution.rel_counts[works_in.value],
            solution.class_counts[employee.value]);
  EXPECT_TRUE(solution.class_counts[employee.value] >=
              solution.class_counts[department.value] * BigInt(3));
  EXPECT_TRUE(solution.class_counts[department.value].IsPositive());
}

TEST(LnReasonerTest, DetectsIsaFreeUnsatisfiability) {
  Schema schema = IsaFreeUnsatSchema();
  LnReasoner reasoner = LnReasoner::Create(schema).value();
  std::vector<bool> satisfiable = reasoner.SatisfiableClasses().value();
  EXPECT_FALSE(satisfiable[0]);
  EXPECT_FALSE(satisfiable[1]);
}

TEST(LnReasonerTest, DependencyRulePropagatesEmptiness) {
  // C must appear in R2 at least once per instance, but R2's other role
  // belongs to class D, which is forced empty through R1. The LP alone
  // cannot see this (the default (0, inf) on R2.V2 contributes no row);
  // only the acceptability/dependency rule zeroes x_R2 and drags C down.
  SchemaBuilder builder2;
  builder2.AddClass("C");
  builder2.AddClass("D");
  builder2.AddClass("E");
  builder2.AddRelationship("R1", {{"U1", "D"}, {"U2", "E"}});
  builder2.AddRelationship("R3", {{"W1", "D"}, {"W2", "E"}});
  builder2.AddRelationship("R2", {{"V1", "C"}, {"V2", "D"}});
  // |R1| >= 2|D|, |R1| == |E|, |R3| == |E| ... build the squeeze:
  // every D in exactly 2 R1-tuples; every E in exactly 1 R1-tuple and
  // exactly 1 R3-tuple; every D in at most 0 R3-tuples is illegal-free...
  // Simplest: every D needs >= 1 R1-tuple, every E at most 0 R1-tuples.
  builder2.SetCardinality("D", "R1", "U1", {1, std::nullopt});
  builder2.SetCardinality("E", "R1", "U2", {0, 0});
  // Every C needs >= 1 R2-tuple; its partner role is D (now empty).
  builder2.SetCardinality("C", "R2", "V1", {1, std::nullopt});
  Schema schema = builder2.Build().value();
  LnReasoner reasoner = LnReasoner::Create(schema).value();
  std::vector<bool> satisfiable = reasoner.SatisfiableClasses().value();
  EXPECT_FALSE(satisfiable[schema.FindClass("D").value().value]);
  EXPECT_FALSE(satisfiable[schema.FindClass("C").value().value]);
  EXPECT_TRUE(satisfiable[schema.FindClass("E").value().value]);
}

TEST(LnReasonerTest, AgreesWithFullMethodOnIsaFreeSchemas) {
  for (const Schema& schema : {EmploymentSchema(), IsaFreeUnsatSchema()}) {
    LnReasoner reasoner = LnReasoner::Create(schema).value();
    std::vector<bool> baseline = reasoner.SatisfiableClasses().value();
    Expansion expansion = Expansion::Build(schema).value();
    SatisfiabilityChecker checker(expansion);
    std::vector<bool> full = checker.SatisfiableClasses().value();
    EXPECT_EQ(baseline, full);
  }
}

TEST(LnReasonerTest, SystemHasOneUnknownPerSymbol) {
  Schema schema = EmploymentSchema();
  LnReasoner reasoner = LnReasoner::Create(schema).value();
  EXPECT_EQ(reasoner.system().num_variables(),
            schema.num_classes() + schema.num_relationships());
}

}  // namespace
}  // namespace crsat
