#include "src/cr/state_text.h"

#include <gtest/gtest.h>

#include "src/cr/model_checker.h"
#include "src/cr/schema_text.h"
#include "src/expansion/expansion.h"
#include "src/generator/random_schema.h"
#include "src/reasoner/satisfiability.h"
#include "src/witness/witness.h"
#include "tests/test_schemas.h"

namespace crsat {
namespace {

using crsat::testing::MeetingSchema;

constexpr char kFigure6State[] = R"(
// The paper's Figure 6 database state.
state Figure6 of Meeting {
  individual John, Mary, talkJ, talkM;
  class Speaker: John, Mary;
  class Discussant: John, Mary;
  class Talk: talkJ, talkM;
  rel Holds: (John, talkJ), (Mary, talkM);
  rel Participates: (John, talkM), (Mary, talkJ);
}
)";

TEST(StateTextTest, ParsesFigure6State) {
  Schema schema = MeetingSchema();
  NamedState state = ParseState(kFigure6State, schema).value();
  EXPECT_EQ(state.name, "Figure6");
  EXPECT_EQ(state.schema_name, "Meeting");
  EXPECT_EQ(state.interpretation.domain_size(), 4);
  ClassId speaker = schema.FindClass("Speaker").value();
  EXPECT_EQ(state.interpretation.ClassExtension(speaker).size(), 2u);
  RelationshipId holds = schema.FindRelationship("Holds").value();
  EXPECT_EQ(state.interpretation.RelationshipExtension(holds).size(), 2u);
}

TEST(StateTextTest, ParsedFigure6StateIsAModel) {
  Schema schema = MeetingSchema();
  NamedState state = ParseState(kFigure6State, schema).value();
  EXPECT_TRUE(ModelChecker::IsModel(schema, state.interpretation));
}

TEST(StateTextTest, RoundTripsThroughPrinter) {
  Schema schema = MeetingSchema();
  NamedState state = ParseState(kFigure6State, schema).value();
  std::string printed =
      StateToText(state.interpretation, state.name, state.schema_name);
  NamedState reparsed = ParseState(printed, schema).value();
  EXPECT_EQ(StateToText(reparsed.interpretation, reparsed.name,
                        reparsed.schema_name),
            printed);
}

TEST(StateTextTest, UnknownIndividualRejected) {
  Schema schema = MeetingSchema();
  Result<NamedState> result = ParseState(R"(
state X of Meeting {
  class Speaker: Ghost;
}
)",
                                         schema);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown individual"),
            std::string::npos);
}

TEST(StateTextTest, UnknownClassRejected) {
  Schema schema = MeetingSchema();
  Result<NamedState> result = ParseState(R"(
state X of Meeting {
  individual a;
  class Ghost: a;
}
)",
                                         schema);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown class"),
            std::string::npos);
}

TEST(StateTextTest, ArityMismatchRejected) {
  Schema schema = MeetingSchema();
  Result<NamedState> result = ParseState(R"(
state X of Meeting {
  individual a, b, c;
  rel Holds: (a, b, c);
}
)",
                                         schema);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("arity"), std::string::npos);
}

TEST(StateTextTest, DuplicateTupleRejected) {
  Schema schema = MeetingSchema();
  Result<NamedState> result = ParseState(R"(
state X of Meeting {
  individual a, b;
  rel Holds: (a, b), (a, b);
}
)",
                                         schema);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("duplicate"), std::string::npos);
}

TEST(StateTextTest, DuplicateIndividualRejected) {
  Schema schema = MeetingSchema();
  Result<NamedState> result = ParseState(R"(
state X of Meeting {
  individual a, a;
}
)",
                                         schema);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("duplicate individual"),
            std::string::npos);
}

TEST(StateTextTest, NonModelStatesParseButFailTheChecker) {
  // Parsing is syntactic; semantics are the checker's job.
  Schema schema = MeetingSchema();
  NamedState state = ParseState(R"(
state Broken of Meeting {
  individual lonelyTalk;
  class Talk: lonelyTalk;   // Unheld talk: violates minc(Talk,Holds,U2)=1.
}
)",
                                schema)
                         .value();
  EXPECT_FALSE(ModelChecker::IsModel(schema, state.interpretation));
}

TEST(StateTextTest, MissingCommasRejected) {
  Schema schema = MeetingSchema();
  EXPECT_FALSE(ParseState(R"(
state X of Meeting {
  individual a, b;
  rel Holds: (a b);
}
)",
                          schema)
                   .ok());
  EXPECT_FALSE(ParseState(R"(
state X of Meeting {
  individual a, b;
  class Speaker: a b;
}
)",
                          schema)
                   .ok());
}

// Synthesized witnesses must survive the state DSL unchanged: render ->
// parse -> render is the identity, and the reparsed state is still a
// model. This is what makes `--dump-dir` artifacts and `checkstate`
// interoperable with witness output across the generator's whole space.
TEST(StateTextTest, CertifiedWitnessesRoundTripOverGeneratorSweep) {
  int round_tripped = 0;
  for (std::uint32_t seed = 1; seed <= 15; ++seed) {
    RandomSchemaParams params;
    params.seed = seed;
    params.num_classes = 4;
    params.num_relationships = 3;
    params.isa_density = 0.3;
    Result<Schema> schema = GenerateRandomSchema(params);
    ASSERT_TRUE(schema.ok()) << "seed " << seed;
    Result<Expansion> expansion = Expansion::Build(*schema);
    ASSERT_TRUE(expansion.ok()) << "seed " << seed;
    SatisfiabilityChecker checker(*expansion);
    Result<std::vector<bool>> verdicts = checker.SatisfiableClasses();
    ASSERT_TRUE(verdicts.ok()) << "seed " << seed;
    bool any = false;
    for (bool satisfiable : *verdicts) {
      any = any || satisfiable;
    }
    if (!any) {
      continue;  // Nothing to witness for this seed.
    }
    WitnessSynthesizer synthesizer(checker);
    Result<CertifiedWitness> witness = synthesizer.Synthesize();
    ASSERT_TRUE(witness.ok()) << "seed " << seed << ": " << witness.status();

    const std::string rendered =
        StateToText(witness->interpretation(), "w", "roundtrip");
    Result<NamedState> reparsed = ParseState(rendered, *schema);
    ASSERT_TRUE(reparsed.ok())
        << "seed " << seed << ": " << reparsed.status() << "\n" << rendered;
    EXPECT_EQ(StateToText(reparsed->interpretation, "w", "roundtrip"),
              rendered)
        << "seed " << seed;
    EXPECT_TRUE(ModelChecker::IsModel(*schema, reparsed->interpretation))
        << "seed " << seed;
    ++round_tripped;
  }
  // The sweep must have exercised the round trip, not skipped everything.
  EXPECT_GT(round_tripped, 5);
}

TEST(StateTextTest, EmptyStateParses) {
  Schema schema = MeetingSchema();
  NamedState state = ParseState("state Empty of Meeting {}", schema).value();
  EXPECT_EQ(state.interpretation.domain_size(), 0);
  EXPECT_TRUE(ModelChecker::IsModel(schema, state.interpretation));
}

TEST(SchemaDotTest, DotOutputContainsDiagramElements) {
  Schema schema = MeetingSchema();
  std::string dot = SchemaToDot(schema, "Meeting");
  EXPECT_NE(dot.find("digraph \"Meeting\""), std::string::npos);
  EXPECT_NE(dot.find("\"Speaker\" [shape=box]"), std::string::npos);
  EXPECT_NE(dot.find("\"Holds\" [shape=diamond]"), std::string::npos);
  // ISA arrow.
  EXPECT_NE(dot.find("\"Discussant\" -> \"Speaker\""), std::string::npos);
  // Role edge with cardinality label.
  EXPECT_NE(dot.find("U1 (1, *)"), std::string::npos);
  // Refinement rendered dashed (the paper's Discussant--Holds edge).
  EXPECT_NE(dot.find("style=dashed, label=\"U1 (0, 2)\""),
            std::string::npos);
}

TEST(SchemaDotTest, DotOutputRendersExtensions) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddClass("C");
  builder.AddIsa("B", "A");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "C"}});
  builder.AddDisjointness({"A", "C"});
  builder.AddCovering("A", {"B"});
  Schema schema = builder.Build().value();
  std::string dot = SchemaToDot(schema, "X");
  EXPECT_NE(dot.find("__disjoint0"), std::string::npos);
  EXPECT_NE(dot.find("__cover1"), std::string::npos);
}

}  // namespace
}  // namespace crsat
