#include "src/lp/simplex.h"

#include <random>

#include <gtest/gtest.h>

#include "src/lp/fourier_motzkin.h"

namespace crsat {
namespace {

// Helper: builds `sum coeff_i * x_i + constant`.
LinearExpr Expr(std::vector<std::pair<VarId, std::int64_t>> terms,
                std::int64_t constant = 0) {
  LinearExpr expr;
  for (const auto& [var, coeff] : terms) {
    expr.AddTerm(var, Rational(coeff));
  }
  expr.AddConstant(Rational(constant));
  return expr;
}

TEST(SimplexTest, EmptySystemIsFeasible) {
  LinearSystem system;
  LpResult result = SimplexSolver::CheckFeasibility(system).value();
  EXPECT_EQ(result.outcome, LpOutcome::kOptimal);
}

TEST(SimplexTest, SimpleMaximization) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0. Optimum at
  // (8/5, 6/5) with value 14/5.
  LinearSystem system;
  VarId x = system.AddVariable("x");
  VarId y = system.AddVariable("y");
  system.AddLe(Expr({{x, 1}, {y, 2}}, -4));
  system.AddLe(Expr({{x, 3}, {y, 1}}, -6));
  LpResult result =
      SimplexSolver::Solve(system, Expr({{x, 1}, {y, 1}}), true).value();
  ASSERT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(result.objective, Rational(14, 5));
  EXPECT_EQ(result.values[x], Rational(8, 5));
  EXPECT_EQ(result.values[y], Rational(6, 5));
}

TEST(SimplexTest, SimpleMinimizationWithGeConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1, y >= 1. Optimum 2*3+3*1 = 9.
  LinearSystem system;
  VarId x = system.AddVariable("x");
  VarId y = system.AddVariable("y");
  system.AddGe(Expr({{x, 1}, {y, 1}}, -4));
  system.AddGe(Expr({{x, 1}}, -1));
  system.AddGe(Expr({{y, 1}}, -1));
  LpResult result =
      SimplexSolver::Solve(system, Expr({{x, 2}, {y, 3}}), false).value();
  ASSERT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(result.objective, Rational(9));
  EXPECT_EQ(result.values[x], Rational(3));
  EXPECT_EQ(result.values[y], Rational(1));
}

TEST(SimplexTest, InfeasibleSystemDetected) {
  // x >= 3 and x <= 1.
  LinearSystem system;
  VarId x = system.AddVariable("x");
  system.AddGe(Expr({{x, 1}}, -3));
  system.AddLe(Expr({{x, 1}}, -1));
  LpResult result = SimplexSolver::CheckFeasibility(system).value();
  EXPECT_EQ(result.outcome, LpOutcome::kInfeasible);
}

TEST(SimplexTest, UnboundedObjectiveDetected) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  system.AddGe(Expr({{x, 1}}, -1));  // x >= 1.
  LpResult result =
      SimplexSolver::Solve(system, Expr({{x, 1}}), true).value();
  EXPECT_EQ(result.outcome, LpOutcome::kUnbounded);
}

TEST(SimplexTest, EqualityConstraints) {
  // x + y == 10, x - y == 4 -> x = 7, y = 3.
  LinearSystem system;
  VarId x = system.AddVariable("x");
  VarId y = system.AddVariable("y");
  system.AddEq(Expr({{x, 1}, {y, 1}}, -10));
  system.AddEq(Expr({{x, 1}, {y, -1}}, -4));
  LpResult result = SimplexSolver::CheckFeasibility(system).value();
  ASSERT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(result.values[x], Rational(7));
  EXPECT_EQ(result.values[y], Rational(3));
}

TEST(SimplexTest, EqualityRequiringNegativeValueIsInfeasibleForNonneg) {
  LinearSystem system;
  VarId x = system.AddVariable("x");  // Nonnegative.
  system.AddEq(Expr({{x, 1}}, 5));    // x == -5.
  LpResult result = SimplexSolver::CheckFeasibility(system).value();
  EXPECT_EQ(result.outcome, LpOutcome::kInfeasible);
}

TEST(SimplexTest, FreeVariableCanGoNegative) {
  LinearSystem system;
  VarId x = system.AddVariable("x", /*nonnegative=*/false);
  system.AddEq(Expr({{x, 1}}, 5));  // x == -5.
  LpResult result = SimplexSolver::CheckFeasibility(system).value();
  ASSERT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(result.values[x], Rational(-5));
}

TEST(SimplexTest, FreeVariableOptimization) {
  // min x s.t. x >= -7, x free -> -7.
  LinearSystem system;
  VarId x = system.AddVariable("x", /*nonnegative=*/false);
  system.AddGe(Expr({{x, 1}}, 7));
  LpResult result =
      SimplexSolver::Solve(system, Expr({{x, 1}}), false).value();
  ASSERT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(result.objective, Rational(-7));
}

TEST(SimplexTest, RedundantConstraintsHandled) {
  // Duplicate and implied rows exercise the redundant-row elimination
  // after phase 1 (equality rows made dependent on purpose).
  LinearSystem system;
  VarId x = system.AddVariable("x");
  VarId y = system.AddVariable("y");
  system.AddEq(Expr({{x, 1}, {y, 1}}, -4));
  system.AddEq(Expr({{x, 2}, {y, 2}}, -8));  // Same hyperplane.
  system.AddLe(Expr({{x, 1}}, -4));
  LpResult result =
      SimplexSolver::Solve(system, Expr({{x, 1}}), true).value();
  ASSERT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(result.objective, Rational(4));
}

TEST(SimplexTest, DegenerateVertexTerminates) {
  // Classic degenerate LP; Bland's rule must avoid cycling.
  LinearSystem system;
  VarId x1 = system.AddVariable("x1");
  VarId x2 = system.AddVariable("x2");
  VarId x3 = system.AddVariable("x3");
  VarId x4 = system.AddVariable("x4");
  system.AddLe(Expr({{x1, 1}, {x2, -2}, {x3, -1}, {x4, 2}}));
  system.AddLe(Expr({{x1, 1}, {x2, -3}, {x3, -1}, {x4, 1}}));
  system.AddLe(Expr({{x1, 1}}, -1));
  LpResult result = SimplexSolver::Solve(
                        system, Expr({{x1, 3}, {x2, -5}, {x3, -1}, {x4, 2}}),
                        true)
                        .value();
  // Must terminate; objective value checked against FM feasibility below.
  EXPECT_TRUE(result.outcome == LpOutcome::kOptimal ||
              result.outcome == LpOutcome::kUnbounded);
}

TEST(SimplexTest, RejectsStrictConstraints) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  system.AddGt(Expr({{x, 1}}));
  EXPECT_FALSE(SimplexSolver::CheckFeasibility(system).ok());
}

TEST(SimplexTest, FractionalDataStaysExact) {
  // max x s.t. (1/3)x <= 1/7 -> x = 3/7 exactly.
  LinearSystem system;
  VarId x = system.AddVariable("x");
  LinearExpr expr = LinearExpr::Term(x, Rational(1, 3));
  expr.AddConstant(Rational(-1, 7));
  system.AddLe(expr);
  LpResult result =
      SimplexSolver::Solve(system, Expr({{x, 1}}), true).value();
  ASSERT_EQ(result.outcome, LpOutcome::kOptimal);
  EXPECT_EQ(result.objective, Rational(3, 7));
}

TEST(SimplexTest, SolutionSatisfiesSystemOnRandomInstances) {
  std::mt19937 rng(99);
  int feasible_count = 0;
  for (int instance = 0; instance < 120; ++instance) {
    LinearSystem system;
    int num_vars = 2 + static_cast<int>(rng() % 3);
    for (int v = 0; v < num_vars; ++v) {
      system.AddVariable("x" + std::to_string(v), (rng() % 4) != 0);
    }
    int num_constraints = 1 + static_cast<int>(rng() % 5);
    for (int c = 0; c < num_constraints; ++c) {
      LinearExpr expr;
      for (int v = 0; v < num_vars; ++v) {
        expr.AddTerm(v, Rational(static_cast<std::int64_t>(rng() % 11) - 5));
      }
      expr.AddConstant(Rational(static_cast<std::int64_t>(rng() % 21) - 10));
      switch (rng() % 3) {
        case 0:
          system.AddLe(expr);
          break;
        case 1:
          system.AddGe(expr);
          break;
        default:
          system.AddEq(expr);
          break;
      }
    }
    LpResult result = SimplexSolver::CheckFeasibility(system).value();
    if (result.outcome == LpOutcome::kOptimal) {
      ++feasible_count;
      EXPECT_TRUE(system.IsSatisfiedBy(result.values))
          << "instance " << instance;
    }
    // Cross-check the verdict with Fourier-Motzkin.
    FmResult fm = FourierMotzkinSolver::Solve(system).value();
    EXPECT_EQ(fm.feasible, result.outcome == LpOutcome::kOptimal)
        << "instance " << instance;
  }
  EXPECT_GT(feasible_count, 0);  // The sweep covers both verdicts.
  EXPECT_LT(feasible_count, 120);
}

}  // namespace
}  // namespace crsat
