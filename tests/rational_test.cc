#include "src/math/rational.h"

#include <random>

#include <gtest/gtest.h>

namespace crsat {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_TRUE(zero.IsInteger());
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.denominator(), BigInt(1));
}

TEST(RationalTest, NormalizesSignIntoNumerator) {
  Rational value(BigInt(1), BigInt(-2));
  EXPECT_EQ(value.ToString(), "-1/2");
  EXPECT_TRUE(value.IsNegative());
  EXPECT_TRUE(value.denominator().IsPositive());
  Rational both_negative(BigInt(-1), BigInt(-2));
  EXPECT_EQ(both_negative.ToString(), "1/2");
}

TEST(RationalTest, ReducesToLowestTerms) {
  EXPECT_EQ(Rational(6, 4).ToString(), "3/2");
  EXPECT_EQ(Rational(4, 2).ToString(), "2");
  EXPECT_EQ(Rational(0, 17).ToString(), "0");
  EXPECT_EQ(Rational(0, 17).denominator(), BigInt(1));
  EXPECT_EQ(Rational(-10, 5).ToString(), "-2");
}

TEST(RationalTest, FromStringParsesBothForms) {
  EXPECT_EQ(Rational::FromString("5").value(), Rational(5));
  EXPECT_EQ(Rational::FromString("-5").value(), Rational(-5));
  EXPECT_EQ(Rational::FromString("1/3").value(), Rational(1, 3));
  EXPECT_EQ(Rational::FromString("-2/6").value(), Rational(-1, 3));
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("").ok());
  EXPECT_FALSE(Rational::FromString("a/b").ok());
}

TEST(RationalTest, ArithmeticBasics) {
  Rational half(1, 2);
  Rational third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(RationalTest, CompoundAssignment) {
  Rational value(1, 2);
  value += Rational(1, 3);
  EXPECT_EQ(value, Rational(5, 6));
  value -= Rational(1, 6);
  EXPECT_EQ(value, Rational(2, 3));
  value *= Rational(3, 2);
  EXPECT_EQ(value, Rational(1));
  value /= Rational(4);
  EXPECT_EQ(value, Rational(1, 4));
}

TEST(RationalTest, ComparisonUsesCrossMultiplication) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LT(Rational(-1, 2), Rational(1, 3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
}

TEST(RationalTest, FloorAndCeil) {
  EXPECT_EQ(Rational(7, 2).Floor(), BigInt(3));
  EXPECT_EQ(Rational(7, 2).Ceil(), BigInt(4));
  EXPECT_EQ(Rational(-7, 2).Floor(), BigInt(-4));
  EXPECT_EQ(Rational(-7, 2).Ceil(), BigInt(-3));
  EXPECT_EQ(Rational(4).Floor(), BigInt(4));
  EXPECT_EQ(Rational(4).Ceil(), BigInt(4));
  EXPECT_EQ(Rational(0).Floor(), BigInt(0));
  EXPECT_EQ(Rational(-4).Floor(), BigInt(-4));
}

TEST(RationalTest, SignPredicates) {
  EXPECT_TRUE(Rational(1, 7).IsPositive());
  EXPECT_TRUE(Rational(-1, 7).IsNegative());
  EXPECT_FALSE(Rational(0).IsPositive());
  EXPECT_FALSE(Rational(0).IsNegative());
  EXPECT_EQ(Rational(-3, 4).sign(), -1);
  EXPECT_EQ(Rational(3, 4).sign(), 1);
  EXPECT_EQ(Rational().sign(), 0);
}

TEST(RationalTest, FieldAxiomsOnRandomValues) {
  std::mt19937 rng(5);
  auto random_rational = [&rng]() {
    std::int64_t numerator =
        static_cast<std::int64_t>(rng() % 2001) - 1000;
    std::int64_t denominator = static_cast<std::int64_t>(rng() % 1000) + 1;
    return Rational(numerator, denominator);
  };
  for (int i = 0; i < 500; ++i) {
    Rational a = random_rational();
    Rational b = random_rational();
    Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.IsZero()) {
      EXPECT_EQ((a / b) * b, a);
    }
    BigInt floor = a.Floor();
    EXPECT_LE(Rational(floor), a);
    EXPECT_LT(a, Rational(floor + BigInt(1)));
  }
}

}  // namespace
}  // namespace crsat
