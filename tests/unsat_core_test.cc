#include "src/reasoner/unsat_core.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/reasoner/satisfiability.h"
#include "tests/test_schemas.h"

namespace crsat {
namespace {

using crsat::testing::Figure1Schema;
using crsat::testing::MeetingSchema;
using crsat::testing::MeetingSchemaWithEagerDiscussants;

// Removes one constraint of `core` from `schema` and checks that `cls`
// becomes satisfiable — the definition of subset-minimality.
void ExpectCoreIsMinimal(const Schema& schema, ClassId cls,
                         const UnsatCore& core) {
  for (size_t drop = 0; drop < core.constraints.size(); ++drop) {
    SchemaBuilder builder;
    for (ClassId c : schema.AllClasses()) {
      builder.AddClass(schema.ClassName(c));
    }
    for (RelationshipId rel : schema.AllRelationships()) {
      std::vector<std::pair<std::string, std::string>> roles;
      for (RoleId role : schema.RolesOf(rel)) {
        roles.emplace_back(schema.RoleName(role),
                           schema.ClassName(schema.PrimaryClass(role)));
      }
      builder.AddRelationship(schema.RelationshipName(rel), roles);
    }
    // Keep only the core constraints except the dropped one. (Dropping a
    // non-core constraint cannot help: the core alone is unsatisfiable.)
    for (size_t i = 0; i < core.constraints.size(); ++i) {
      if (i == drop) {
        continue;
      }
      const CoreConstraint& unit = core.constraints[i];
      switch (unit.kind) {
        case CoreConstraint::Kind::kIsa: {
          const IsaStatement& isa = schema.isa_statements()[unit.index];
          builder.AddIsa(schema.ClassName(isa.subclass),
                         schema.ClassName(isa.superclass));
          break;
        }
        case CoreConstraint::Kind::kCardinality: {
          const CardinalityDeclaration& decl =
              schema.cardinality_declarations()[unit.index];
          builder.SetCardinality(schema.ClassName(decl.cls),
                                 schema.RelationshipName(decl.rel),
                                 schema.RoleName(decl.role),
                                 decl.cardinality);
          break;
        }
        case CoreConstraint::Kind::kDisjointness: {
          const DisjointnessConstraint& group =
              schema.disjointness_constraints()[unit.index];
          std::vector<std::string> names;
          for (ClassId c : group.classes) {
            names.push_back(schema.ClassName(c));
          }
          builder.AddDisjointness(names);
          break;
        }
        case CoreConstraint::Kind::kCovering: {
          const CoveringConstraint& constraint =
              schema.covering_constraints()[unit.index];
          std::vector<std::string> coverers;
          for (ClassId c : constraint.coverers) {
            coverers.push_back(schema.ClassName(c));
          }
          builder.AddCovering(schema.ClassName(constraint.covered),
                              coverers);
          break;
        }
      }
    }
    Result<Schema> reduced = builder.Build();
    if (!reduced.ok()) {
      // Dropping an ISA edge can orphan a kept refinement; the minimizer
      // handles that internally, and for this external check it just means
      // the configuration is not directly buildable — skip it.
      continue;
    }
    Expansion expansion = Expansion::Build(reduced.value()).value();
    SatisfiabilityChecker checker(expansion);
    EXPECT_TRUE(checker.IsClassSatisfiable(cls).value())
        << "core stayed unsatisfiable after dropping: "
        << core.constraints[drop].description;
  }
}

TEST(UnsatCoreTest, Figure1CoreContainsAllThreeInteractingConstraints) {
  // Figure 1's unsatisfiability genuinely needs the ISA edge, the (2,inf)
  // bound, and the (0,1) bound: dropping any one makes C satisfiable.
  Schema schema = Figure1Schema();
  ClassId c = schema.FindClass("C").value();
  UnsatCore core = MinimizeUnsatCore(schema, c).value();
  ASSERT_EQ(core.constraints.size(), 3u);
  std::vector<std::string> descriptions;
  for (const CoreConstraint& constraint : core.constraints) {
    descriptions.push_back(constraint.description);
  }
  EXPECT_NE(std::find(descriptions.begin(), descriptions.end(),
                      "isa D < C"),
            descriptions.end());
  EXPECT_NE(std::find(descriptions.begin(), descriptions.end(),
                      "card C in R.V1 = (2, *)"),
            descriptions.end());
  EXPECT_NE(std::find(descriptions.begin(), descriptions.end(),
                      "card D in R.V2 = (0, 1)"),
            descriptions.end());
  ExpectCoreIsMinimal(schema, c, core);
}

TEST(UnsatCoreTest, SatisfiableClassHasNoCore) {
  Schema schema = MeetingSchema();
  ClassId speaker = schema.FindClass("Speaker").value();
  Result<UnsatCore> result = MinimizeUnsatCore(schema, speaker);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(UnsatCoreTest, EagerDiscussantCoreIsMinimalAndExcludesIrrelevant) {
  // The Section 3.3 variant: Speaker becomes unsatisfiable. Add an
  // unrelated Room/LocatedIn fragment; the minimizer must exclude it.
  SchemaBuilder builder = MeetingSchemaWithEagerDiscussants().ToBuilder();
  builder.AddClass("Room");
  builder.AddRelationship("LocatedIn", {{"L1", "Talk"}, {"L2", "Room"}});
  builder.SetCardinality("Room", "LocatedIn", "L2", {0, 5});
  Schema schema = builder.Build().value();
  ClassId speaker = schema.FindClass("Speaker").value();
  UnsatCore core = MinimizeUnsatCore(schema, speaker).value();
  EXPECT_GE(core.constraints.size(), 3u);
  for (const CoreConstraint& constraint : core.constraints) {
    EXPECT_EQ(constraint.description.find("Room"), std::string::npos)
        << constraint.description;
  }
  ExpectCoreIsMinimal(schema, speaker, core);
}

TEST(UnsatCoreTest, DisjointnessCoreFound) {
  // B <= A, B <= C, A disjoint C: B unsatisfiable; core = the three
  // constraints.
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddClass("C");
  builder.AddIsa("B", "A");
  builder.AddIsa("B", "C");
  builder.AddDisjointness({"A", "C"});
  builder.AddRelationship("R", {{"U", "A"}, {"V", "C"}});
  Schema schema = builder.Build().value();
  ClassId b = schema.FindClass("B").value();
  UnsatCore core = MinimizeUnsatCore(schema, b).value();
  ASSERT_EQ(core.constraints.size(), 3u);
  int isa_count = 0;
  int disjointness_count = 0;
  for (const CoreConstraint& constraint : core.constraints) {
    if (constraint.kind == CoreConstraint::Kind::kIsa) {
      ++isa_count;
    }
    if (constraint.kind == CoreConstraint::Kind::kDisjointness) {
      ++disjointness_count;
    }
  }
  EXPECT_EQ(isa_count, 2);
  EXPECT_EQ(disjointness_count, 1);
  ExpectCoreIsMinimal(schema, b, core);
}

TEST(UnsatCoreTest, CoveringCoreFound) {
  SchemaBuilder builder;
  builder.AddClass("Person");
  builder.AddClass("Adult");
  builder.AddIsa("Adult", "Person");
  builder.AddRelationship("R", {{"U", "Person"}, {"V", "Person"}});
  builder.SetCardinality("Person", "R", "U", {2, std::nullopt});
  builder.SetCardinality("Adult", "R", "U", {0, 1});
  builder.AddCovering("Person", {"Adult"});
  Schema schema = builder.Build().value();
  ClassId person = schema.FindClass("Person").value();
  UnsatCore core = MinimizeUnsatCore(schema, person).value();
  bool has_covering = false;
  for (const CoreConstraint& constraint : core.constraints) {
    if (constraint.kind == CoreConstraint::Kind::kCovering) {
      has_covering = true;
    }
  }
  EXPECT_TRUE(has_covering);
  ExpectCoreIsMinimal(schema, person, core);
}

}  // namespace
}  // namespace crsat
