#include "src/reasoner/system_builder.h"

#include <gtest/gtest.h>

#include "tests/test_schemas.h"

namespace crsat {
namespace {

using crsat::testing::Figure1Schema;
using crsat::testing::MeetingSchema;

TEST(SystemBuilderTest, MeetingSystemShape) {
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  CrSystem cr = SystemBuilder::Build(expansion);
  // One unknown per consistent compound class (5) and relationship (18).
  EXPECT_EQ(cr.class_vars.size(), 5u);
  EXPECT_EQ(cr.rel_vars.size(), 18u);
  EXPECT_EQ(cr.system.num_variables(), 23);
  // Figure 5's disequation count over consistent unknowns:
  //   Holds.U1: minc for {S},{S,D},{S,T},{S,D,T} (4) + maxc for
  //             {S,D},{S,D,T} (2)
  //   Holds.U2: minc+maxc for {T},{S,T},{S,D,T} (6)
  //   Part.U3:  minc+maxc for {S,D},{S,D,T} (4)
  //   Part.U4:  minc for {T},{S,T},{S,D,T} (3)
  EXPECT_EQ(cr.system.num_constraints(), 19u);
  EXPECT_TRUE(cr.system.IsHomogeneous());
  EXPECT_FALSE(cr.system.HasStrictConstraints());
  for (VarId v = 0; v < cr.system.num_variables(); ++v) {
    EXPECT_TRUE(cr.system.IsNonnegative(v));
  }
}

TEST(SystemBuilderTest, VariableClassification) {
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  CrSystem cr = SystemBuilder::Build(expansion);
  for (VarId var : cr.class_vars) {
    EXPECT_FALSE(cr.IsRelationshipVar(var));
  }
  for (size_t i = 0; i < cr.rel_vars.size(); ++i) {
    EXPECT_TRUE(cr.IsRelationshipVar(cr.rel_vars[i]));
    EXPECT_EQ(cr.RelationshipIndexOfVar(cr.rel_vars[i]),
              static_cast<int>(i));
  }
}

TEST(SystemBuilderTest, ConstraintCoefficientsMatchLiftedCardinalities) {
  // For Figure 1's schema: R(V1: C, V2: D) with (2,inf) on C and (0,1) on
  // D, D <= C. Consistent compound classes: {C} and {C,D}.
  Schema schema = Figure1Schema();
  Expansion expansion = Expansion::Build(schema).value();
  CrSystem cr = SystemBuilder::Build(expansion);
  ASSERT_EQ(cr.class_vars.size(), 2u);
  // V1 candidates {C},{C,D} each with minc 2 (one constraint each);
  // V2 candidates {C,D} with maxc 1 (one constraint). Total 3.
  EXPECT_EQ(cr.system.num_constraints(), 3u);

  // Find the minc row for {C}: sum(rels with {C} at V1) - 2*c_{C} >= 0.
  int c_index = expansion.ClassIndexOf(CompoundClass(0b01));
  ASSERT_GE(c_index, 0);
  VarId c_var = cr.class_vars[c_index];
  bool found = false;
  for (const Constraint& constraint : cr.system.constraints()) {
    if (constraint.expr.CoefficientOf(c_var) == Rational(-2)) {
      found = true;
      EXPECT_EQ(constraint.sense, ConstraintSense::kGreaterEqual);
      // The positive terms are exactly the compound relationships with
      // {C} at role position 0.
      RelationshipId r = schema.FindRelationship("R").value();
      size_t positive_terms = 0;
      for (const auto& [var, coeff] : constraint.expr.terms()) {
        if (coeff.IsPositive()) {
          EXPECT_EQ(coeff, Rational(1));
          ++positive_terms;
        }
      }
      EXPECT_EQ(positive_terms,
                expansion.RelationshipsWith(r, 0, c_index).size());
    }
  }
  EXPECT_TRUE(found);
}

TEST(SystemBuilderTest, DefaultCardinalitiesProduceNoConstraints) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "B"}});
  Schema schema = builder.Build().value();
  Expansion expansion = Expansion::Build(schema).value();
  CrSystem cr = SystemBuilder::Build(expansion);
  EXPECT_EQ(cr.system.num_constraints(), 0u);
}

TEST(SystemBuilderTest, PresentationSystemMatchesFigure5Scale) {
  // Figure 5 shows the full presentation with unknowns for all 7 compound
  // classes and all 49+49 compound relationships.
  Schema schema = MeetingSchema();
  LinearSystem presentation =
      SystemBuilder::BuildPresentationSystem(schema).value();
  EXPECT_EQ(presentation.num_variables(), 7 + 49 + 49);
  // Pinned inconsistent unknowns: classes {D},{D,T} (2) + inconsistent
  // compound relationships (49-12) + (49-6) = 80. Cardinality rows: 19.
  EXPECT_EQ(presentation.num_constraints(), 2u + 80u + 19u);
  EXPECT_TRUE(presentation.IsHomogeneous());
}

TEST(SystemBuilderTest, PresentationSystemNamesFollowThePaper) {
  Schema schema = MeetingSchema();
  LinearSystem presentation =
      SystemBuilder::BuildPresentationSystem(schema).value();
  // c1..c7 then Holds_i_j and Participates_i_j blocks.
  EXPECT_EQ(presentation.VariableName(0), "c1");
  EXPECT_EQ(presentation.VariableName(6), "c7");
  EXPECT_EQ(presentation.VariableName(7), "Holds_1_1");
  EXPECT_EQ(presentation.VariableName(7 + 49), "Participates_1_1");
}

}  // namespace
}  // namespace crsat
