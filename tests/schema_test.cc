#include "src/cr/schema.h"

#include <gtest/gtest.h>

#include "tests/test_schemas.h"

namespace crsat {
namespace {

using crsat::testing::MeetingSchema;

TEST(SchemaBuilderTest, MeetingSchemaBuilds) {
  Schema schema = MeetingSchema();
  EXPECT_EQ(schema.num_classes(), 3);
  EXPECT_EQ(schema.num_relationships(), 2);
  EXPECT_EQ(schema.num_roles(), 4);
}

TEST(SchemaBuilderTest, DuplicateClassNameRejected) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("A");
  Result<Schema> result = builder.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("duplicate class"),
            std::string::npos);
}

TEST(SchemaBuilderTest, UnknownClassInIsaRejected) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddIsa("A", "Missing");
  EXPECT_FALSE(builder.Build().ok());
}

TEST(SchemaBuilderTest, ArityOneRejected) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddRelationship("R", {{"U", "A"}});
  Result<Schema> result = builder.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("arity"), std::string::npos);
}

TEST(SchemaBuilderTest, RoleNamesMustBeGloballyUnique) {
  // Definition 2.1: role(R) and role(R') are disjoint.
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddRelationship("R1", {{"U", "A"}, {"V", "A"}});
  builder.AddRelationship("R2", {{"U", "A"}, {"W", "A"}});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(SchemaBuilderTest, CardinalityOnNonSubclassRejected) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");  // Not related to A by ISA.
  builder.AddRelationship("R", {{"U", "A"}, {"V", "A"}});
  builder.SetCardinality("B", "R", "U", {1, 1});
  Result<Schema> result = builder.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("subclass"), std::string::npos);
}

TEST(SchemaBuilderTest, CardinalityMaxBelowMinRejected) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "A"}});
  builder.SetCardinality("A", "R", "U", {3, 2});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(SchemaBuilderTest, DuplicateCardinalityDeclarationRejected) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "A"}});
  builder.SetCardinality("A", "R", "U", {1, 2});
  builder.SetCardinality("A", "R", "U", {0, 3});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(SchemaBuilderTest, RoleFromWrongRelationshipRejected) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddRelationship("R1", {{"U1", "A"}, {"U2", "A"}});
  builder.AddRelationship("R2", {{"V1", "A"}, {"V2", "A"}});
  builder.SetCardinality("A", "R1", "V1", {1, 1});
  Result<Schema> result = builder.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("does not belong"),
            std::string::npos);
}

TEST(SchemaBuilderTest, ErrorsAccumulate) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("A");
  builder.AddIsa("A", "Missing");
  builder.AddRelationship("R", {{"U", "A"}});
  Result<Schema> result = builder.Build();
  ASSERT_FALSE(result.ok());
  // All three problems reported in one message.
  EXPECT_NE(result.status().message().find("duplicate class"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("unknown class"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("arity"), std::string::npos);
}

TEST(SchemaTest, IsaClosureIsReflexiveAndTransitive) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddClass("C");
  builder.AddClass("D");
  builder.AddIsa("A", "B");
  builder.AddIsa("B", "C");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "A"}});
  Schema schema = builder.Build().value();
  ClassId a = schema.FindClass("A").value();
  ClassId b = schema.FindClass("B").value();
  ClassId c = schema.FindClass("C").value();
  ClassId d = schema.FindClass("D").value();
  EXPECT_TRUE(schema.IsSubclassOf(a, a));
  EXPECT_TRUE(schema.IsSubclassOf(a, b));
  EXPECT_TRUE(schema.IsSubclassOf(a, c));
  EXPECT_TRUE(schema.IsSubclassOf(b, c));
  EXPECT_FALSE(schema.IsSubclassOf(c, a));
  EXPECT_FALSE(schema.IsSubclassOf(b, a));
  EXPECT_FALSE(schema.IsSubclassOf(a, d));
  EXPECT_FALSE(schema.IsSubclassOf(d, a));
}

TEST(SchemaTest, IsaCyclesAreAllowedAndMakeClassesEquivalent) {
  // Definition 2.1 does not forbid cycles; C <=* D and D <=* C.
  SchemaBuilder builder;
  builder.AddClass("C");
  builder.AddClass("D");
  builder.AddIsa("C", "D");
  builder.AddIsa("D", "C");
  builder.AddRelationship("R", {{"U", "C"}, {"V", "D"}});
  Schema schema = builder.Build().value();
  ClassId c = schema.FindClass("C").value();
  ClassId d = schema.FindClass("D").value();
  EXPECT_TRUE(schema.IsSubclassOf(c, d));
  EXPECT_TRUE(schema.IsSubclassOf(d, c));
}

TEST(SchemaTest, SubAndSuperclassEnumeration) {
  Schema schema = MeetingSchema();
  ClassId speaker = schema.FindClass("Speaker").value();
  ClassId discussant = schema.FindClass("Discussant").value();
  std::vector<ClassId> subs = schema.SubclassesOf(speaker);
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0], speaker);
  EXPECT_EQ(subs[1], discussant);
  std::vector<ClassId> supers = schema.SuperclassesOf(discussant);
  ASSERT_EQ(supers.size(), 2u);
  EXPECT_EQ(supers[0], speaker);
  EXPECT_EQ(supers[1], discussant);
}

TEST(SchemaTest, CardinalityLookupWithDefault) {
  Schema schema = MeetingSchema();
  ClassId speaker = schema.FindClass("Speaker").value();
  ClassId discussant = schema.FindClass("Discussant").value();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RoleId u1 = schema.FindRole("U1").value();
  Cardinality speaker_card = schema.GetCardinality(speaker, holds, u1);
  EXPECT_EQ(speaker_card.min, 1u);
  EXPECT_FALSE(speaker_card.max.has_value());
  Cardinality discussant_card = schema.GetCardinality(discussant, holds, u1);
  EXPECT_EQ(discussant_card.min, 0u);
  EXPECT_EQ(discussant_card.max, std::optional<std::uint64_t>(2));
  // Undeclared triple: implicit default.
  RoleId u2 = schema.FindRole("U2").value();
  Cardinality implicit = schema.GetCardinality(discussant, holds, u2);
  EXPECT_TRUE(implicit.IsDefault());
}

TEST(SchemaTest, RoleMetadata) {
  Schema schema = MeetingSchema();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RoleId u1 = schema.FindRole("U1").value();
  RoleId u2 = schema.FindRole("U2").value();
  EXPECT_EQ(schema.RelationshipOf(u1), holds);
  EXPECT_EQ(schema.PrimaryClass(u1), schema.FindClass("Speaker").value());
  EXPECT_EQ(schema.PrimaryClass(u2), schema.FindClass("Talk").value());
  EXPECT_EQ(schema.RolePosition(u1), 0);
  EXPECT_EQ(schema.RolePosition(u2), 1);
  ASSERT_EQ(schema.RolesOf(holds).size(), 2u);
  EXPECT_EQ(schema.RolesOf(holds)[0], u1);
}

TEST(SchemaTest, DisjointnessDeclarationAndQuery) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddClass("C");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "B"}});
  builder.AddDisjointness({"A", "B"});
  Schema schema = builder.Build().value();
  ClassId a = schema.FindClass("A").value();
  ClassId b = schema.FindClass("B").value();
  ClassId c = schema.FindClass("C").value();
  EXPECT_TRUE(schema.AreDeclaredDisjoint(a, b));
  EXPECT_TRUE(schema.AreDeclaredDisjoint(b, a));
  EXPECT_FALSE(schema.AreDeclaredDisjoint(a, c));
  EXPECT_FALSE(schema.AreDeclaredDisjoint(a, a));
}

TEST(SchemaTest, DisjointnessValidation) {
  SchemaBuilder one_class;
  one_class.AddClass("A");
  one_class.AddRelationship("R", {{"U", "A"}, {"V", "A"}});
  one_class.AddDisjointness({"A"});
  EXPECT_FALSE(one_class.Build().ok());

  SchemaBuilder repeated;
  repeated.AddClass("A");
  repeated.AddRelationship("R", {{"U", "A"}, {"V", "A"}});
  repeated.AddDisjointness({"A", "A"});
  EXPECT_FALSE(repeated.Build().ok());
}

TEST(SchemaTest, CoveringDeclaration) {
  SchemaBuilder builder;
  builder.AddClass("Person");
  builder.AddClass("Adult");
  builder.AddClass("Minor");
  builder.AddIsa("Adult", "Person");
  builder.AddIsa("Minor", "Person");
  builder.AddRelationship("R", {{"U", "Person"}, {"V", "Person"}});
  builder.AddCovering("Person", {"Adult", "Minor"});
  Schema schema = builder.Build().value();
  ASSERT_EQ(schema.covering_constraints().size(), 1u);
  EXPECT_EQ(schema.covering_constraints()[0].covered,
            schema.FindClass("Person").value());
  EXPECT_EQ(schema.covering_constraints()[0].coverers.size(), 2u);
}

TEST(SchemaTest, ToBuilderRoundTripsAllDeclarations) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddClass("C");
  builder.AddIsa("B", "A");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "C"}});
  builder.SetCardinality("A", "R", "U", {1, 2});
  builder.SetCardinality("B", "R", "U", {1, 1});
  builder.AddDisjointness({"A", "C"});
  builder.AddCovering("A", {"B"});
  Schema original = builder.Build().value();
  Schema copy = original.ToBuilder().Build().value();
  EXPECT_EQ(copy.num_classes(), original.num_classes());
  EXPECT_EQ(copy.num_relationships(), original.num_relationships());
  EXPECT_EQ(copy.isa_statements().size(), original.isa_statements().size());
  EXPECT_EQ(copy.cardinality_declarations().size(),
            original.cardinality_declarations().size());
  EXPECT_EQ(copy.disjointness_constraints().size(), 1u);
  EXPECT_EQ(copy.covering_constraints().size(), 1u);
  ClassId b = copy.FindClass("B").value();
  RelationshipId r = copy.FindRelationship("R").value();
  RoleId u = copy.FindRole("U").value();
  EXPECT_EQ(copy.GetCardinality(b, r, u),
            (Cardinality{1, std::optional<std::uint64_t>(1)}));
}

TEST(SchemaTest, CardinalityToString) {
  EXPECT_EQ((Cardinality{1, std::nullopt}).ToString(), "(1, *)");
  EXPECT_EQ((Cardinality{0, std::optional<std::uint64_t>(2)}).ToString(),
            "(0, 2)");
}

}  // namespace
}  // namespace crsat
