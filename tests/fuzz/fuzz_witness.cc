// Fuzz target: the witness synthesis pipeline behind a resource guard.
// Inputs that parse as schemas run through expansion, satisfiability, and
// — when some class is satisfiable — full witness synthesis ending in the
// certification gate. The pipeline's own invariant does the heavy lifting:
// `CertifiedWitness::Certify` returns `kInternal` if a synthesized
// interpretation is not a model, and that (like any crash, hang, or
// sanitizer finding) trips the fuzzer; verdicts, parse errors, size-cap
// refusals, and resource trips are all normal.
//
// See fuzz_schema_text.cc for how the target is built and run.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "src/crsat.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Single-threaded keeps per-input work bounded and reports deterministic.
  static const bool pool_pinned = [] {
    crsat::SetGlobalThreadCount(1);
    return true;
  }();
  (void)pool_pinned;

  const std::string text(reinterpret_cast<const char*>(data), size);
  crsat::Result<crsat::NamedSchema> parsed = crsat::ParseSchema(text);
  if (!parsed.ok()) {
    return 0;
  }

  crsat::ResourceLimits limits;
  limits.timeout = std::chrono::milliseconds(100);
  limits.max_compounds = 10000;
  limits.max_memory_bytes = std::uint64_t{64} << 20;
  crsat::ResourceGuard guard(limits);

  crsat::ExpansionOptions options;
  options.guard = &guard;
  crsat::Result<crsat::Expansion> expansion =
      crsat::Expansion::Build(parsed->schema, options);
  if (!expansion.ok()) {
    return 0;  // Includes clean resource trips.
  }
  crsat::SatisfiabilityChecker checker(*expansion);
  crsat::Result<std::vector<bool>> satisfiable = checker.SatisfiableClasses();
  if (!satisfiable.ok()) {
    return 0;
  }

  crsat::WitnessSynthesizer synthesizer(checker);
  crsat::WitnessOptions witness_options;
  witness_options.guard = &guard;
  witness_options.source_map = &parsed->source_map;
  witness_options.max_model_size = 100000;
  crsat::Result<crsat::CertifiedWitness> witness =
      synthesizer.Synthesize(witness_options);
  if (!witness.ok()) {
    // `kInternal` means the pipeline emitted something certification had
    // to refuse — exactly the bug class this target exists to catch.
    if (witness.status().code() == crsat::StatusCode::kInternal) {
      std::abort();
    }
    return 0;
  }
  // Exercise the renderers on whatever certified; they must not crash on
  // any schema shape (odd names, empty extensions, high arities).
  (void)crsat::WitnessToJson(*witness);
  (void)crsat::WitnessToDot(*witness);
  return 0;
}
