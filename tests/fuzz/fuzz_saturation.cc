// Fuzz target: the graph-saturation witness engine on arbitrary schema
// text. Every class of every parsing input is decided under a tight
// guard, and the target re-judges everything the engine claims:
//
//   - a kFiniteModel result whose model fails ModelChecker aborts (the
//     certification gate is the engine's whole contract — the harness
//     trusts a certified model without re-deriving it);
//   - a kSatWithReuse or kFiniteModel graph that fails the local
//     validator aborts (the unraveling theorem only covers valid
//     graphs, so an invalid one silently weakens the vote);
//   - unraveling a valid blocked graph must succeed and violate nothing
//     beyond frontier cardinality debts.
//
// Verdicts, parse errors, and resource trips are all normal. See
// fuzz_schema_text.cc for how the target is built and run.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/crsat.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Single-threaded keeps per-input work bounded and reports deterministic.
  static const bool pool_pinned = [] {
    crsat::SetGlobalThreadCount(1);
    return true;
  }();
  (void)pool_pinned;

  const std::string text(reinterpret_cast<const char*>(data), size);
  crsat::Result<crsat::NamedSchema> parsed = crsat::ParseSchema(text);
  if (!parsed.ok()) {
    return 0;
  }
  const crsat::Schema& schema = parsed->schema;

  crsat::ResourceLimits limits;
  limits.timeout = std::chrono::milliseconds(100);
  limits.max_compounds = 10000;
  limits.max_memory_bytes = std::uint64_t{64} << 20;
  crsat::ResourceGuard guard(limits);

  crsat::SaturationOptions options;
  options.guard = &guard;
  options.max_nodes = 128;
  options.max_steps = 20000;
  options.finite_node_cap = 12;
  crsat::SaturationReport report =
      crsat::SaturationEngine::Decide(schema, options);

  for (const crsat::SaturationClassResult& result : report.classes) {
    switch (result.verdict) {
      case crsat::SaturationVerdict::kFiniteModel: {
        if (!result.model.has_value() ||
            !crsat::ModelChecker::IsModel(schema, *result.model)) {
          std::abort();  // A certified model must actually be a model.
        }
        break;
      }
      case crsat::SaturationVerdict::kSatWithReuse: {
        if (!crsat::ValidateSaturationGraph(schema, result.graph, result.cls)
                 .empty()) {
          std::abort();  // The exhibited graph must check locally.
        }
        crsat::Result<crsat::Interpretation> prefix = crsat::UnravelPrefix(
            schema, result.graph, /*max_individuals=*/64);
        if (!prefix.ok()) {
          std::abort();  // A valid graph must unravel.
        }
        for (const crsat::ModelViolation& violation :
             crsat::ModelChecker::CheckModel(schema, *prefix)) {
          if (violation.kind != crsat::ModelViolation::Kind::kCardinality) {
            std::abort();  // Only frontier min-debts may remain.
          }
        }
        break;
      }
      case crsat::SaturationVerdict::kUnsat:
      case crsat::SaturationVerdict::kUnknown:
        // kUnsat is cross-checked by the conformance harness against the
        // oracle; kUnknown must simply never be a silent guess, which
        // the empty-model invariant below covers.
        if (result.model.has_value()) {
          std::abort();
        }
        break;
    }
  }
  return 0;
}
