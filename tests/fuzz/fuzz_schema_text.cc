// Fuzz target: the text front end (lexer + schema parser + state parser +
// structural lint). Proves the input-handling layer is panic-free on
// adversarial bytes: any input must either parse or fail with a clean
// `ParseError` — never crash, hang, or read out of bounds.
//
// Built two ways:
//   - with -DCRSAT_FUZZ=ON (clang): a libFuzzer binary, run by CI for 60 s
//     under ASan+UBSan against the seed corpus in tests/fuzz/corpus/;
//   - otherwise: linked against fuzz_driver_main.cc into a replay binary
//     that runs the seed corpus as a plain ctest regression test.

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/crsat.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  // Strict and lenient parses take different error paths; run both.
  crsat::Result<crsat::NamedSchema> strict = crsat::ParseSchema(text);
  crsat::ParseSchemaOptions lenient_options;
  lenient_options.permit_empty_ranges = true;
  crsat::Result<crsat::NamedSchema> lenient =
      crsat::ParseSchema(text, lenient_options);

  if (lenient.ok()) {
    // A parsed schema must survive the full structural lint sweep.
    (void)crsat::RunLint(*lenient);
  }
  if (strict.ok()) {
    // The same bytes interpreted as a database-state file against the
    // schema they parsed as — almost always a parse error, which is
    // exactly the path being hardened.
    (void)crsat::ParseState(text, strict->schema);
  }
  return 0;
}
