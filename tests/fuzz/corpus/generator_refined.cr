schema gen77 {
  class C0;
  class C1;
  class C2;
  class C3;
  class C4;
  isa C0 < C2;
  isa C0 < C4;
  isa C1 < C3;
  isa C1 < C4;
  isa C2 < C4;
  isa C3 < C4;
  relationship R0(R0_U0: C4, R0_U1: C1, R0_U2: C3);
  relationship R1(R1_U0: C1, R1_U1: C4, R1_U2: C3);
  relationship R2(R2_U0: C3, R2_U1: C1);
  card C4 in R0.R0_U0 = (2, *);
  card C2 in R0.R0_U0 = (2, 3);
  card C1 in R0.R0_U2 = (2, *);
  card C1 in R1.R1_U0 = (1, 1);
  card C3 in R1.R1_U2 = (2, *);
  card C3 in R2.R2_U0 = (0, 2);
  card C1 in R2.R2_U1 = (0, 1);
  disjoint C4, C0;
}
