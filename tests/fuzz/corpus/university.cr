// A larger conceptual-design scenario; see examples/university.cpp.
schema University {
  class Person, Student, Professor, PhDStudent, Course, Department, Room;

  isa Student < Person;
  isa Professor < Person;
  isa PhDStudent < Student;
  isa PhDStudent < Professor;

  disjoint Person, Course, Room;
  cover Person by Student, Professor;

  relationship Teaches(teacher: Professor, course: Course);
  relationship Enrolled(student: Student, enrolled_course: Course);
  relationship Lecture(lecture_course: Course, room: Room, dept: Department);

  card Professor in Teaches.teacher = (1, 3);
  card Course in Teaches.course = (1, 1);
  card PhDStudent in Teaches.teacher = (1, 1);

  card Student in Enrolled.student = (1, 5);
  card Course in Enrolled.enrolled_course = (2, *);
  card PhDStudent in Enrolled.student = (1, 2);

  card Course in Lecture.lecture_course = (1, 1);
  card Room in Lecture.room = (0, 4);
  card Department in Lecture.dept = (1, *);
}
