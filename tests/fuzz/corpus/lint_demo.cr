// A deliberately broken schema exercising the lint engine
// (`crsat_cli lint examples/schemas/lint_demo.cr`). Expected findings:
//   isa-cycle                     Alpha/Beta/Gamma forced equal
//   redundant-isa                 Junior < Employee implied via Senior
//   empty-range                   (3, 2) on Worker in Works.agent
//   card-refinement-conflict      Senior inherits min 2 > max 1
//   trivially-unsat-relationship  Works needs a Worker filler
//   unused-class                  Orphan referenced by nothing
//   dangling-role                 Tasks.victim never constrained
schema LintDemo {
  class Alpha, Beta, Gamma;
  class Worker, Task, Orphan;
  class Employee, Senior, Junior;

  isa Alpha < Beta;
  isa Beta < Gamma;
  isa Gamma < Alpha;

  isa Senior < Employee;
  isa Junior < Senior;
  isa Junior < Employee;

  relationship Works(agent: Worker, job: Task);
  relationship Tasks(owner: Employee, victim: Task);

  card Worker in Works.agent = (3, 2);
  card Task in Works.job = (0, 4);

  card Employee in Tasks.owner = (2, *);
  card Senior in Tasks.owner = (0, 1);
}
