// Figure 1 of the paper: a finitely unsatisfiable ER-diagram. The number
// of R-tuples must be at least 2|C| and at most |D|, while D <= C forces
// |D| <= |C| — only the empty database state satisfies everything.
schema Figure1 {
  class C, D;
  isa D < C;
  relationship R(V1: C, V2: D);
  card C in R.V1 = (2, *);
  card D in R.V2 = (0, 1);
}
