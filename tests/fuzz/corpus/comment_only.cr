// only a comment
# and another comment style
