// Finitely unsatisfiable, classically satisfiable — the self-referential
// variant of the paper's Figure 1. Counting: every C owns at least two
// R-tuples (R.V1), but each C absorbs at most one as the V2 component, so
// 2|C| <= |R| <= |C| forces C empty in every finite database state. An
// infinite binary tree of Cs satisfies every constraint, which is exactly
// what the saturation engine's blocked (cyclic) graph certifies:
// sat-with-reuse against the reasoner's finitely-UNSAT.
schema FinitelyUnsatBinaryTree {
  class C;
  relationship R(V1: C, V2: C);
  card C in R.V1 = (2, *);
  card C in R.V2 = (0, 1);
}
