schema gen1234 {
  class C0;
  class C1;
  class C2;
  class C3;
  class C4;
  isa C0 < C1;
  relationship R0(R0_U0: C0, R0_U1: C1);
  relationship R1(R1_U0: C1, R1_U1: C3, R1_U2: C4);
  relationship R2(R2_U0: C3, R2_U1: C4, R2_U2: C0);
  card C0 in R0.R0_U0 = (2, 4);
  card C0 in R0.R0_U1 = (0, 1);
  card C1 in R1.R1_U0 = (0, 0);
  card C3 in R1.R1_U1 = (0, *);
  card C4 in R1.R1_U2 = (2, *);
  card C4 in R2.R2_U1 = (2, 3);
  card C0 in R2.R2_U2 = (1, 3);
  disjoint C2, C3;
}
