// A state that is NOT a model of the meeting schema: the talk has no
// holder and no participant, and Dan is a discussant who is not a speaker.
// `crsat_cli checkstate` reports each violated condition of Definition 2.2.
state Broken of Meeting {
  individual Dan, lonelyTalk;
  class Discussant: Dan;
  class Talk: lonelyTalk;
}
