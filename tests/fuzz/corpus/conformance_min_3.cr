schema minimized {
  class C0;
  class C1;
  class C2;
  class C3;
}
