// Fuzz target: the crsatd wire-frame decoder (src/server/protocol.h),
// fed raw bytes with no socket in the loop. Proves the framing layer is
// panic-free on adversarial streams: any byte sequence must decode to a
// frame, a need-more-bytes verdict, or a clean protocol error — never
// crash, over-read, or trust a lying length prefix. Decoded frames must
// round-trip through EncodeFrame bit-exactly, and the budget clamp must
// never exceed the server cap.
//
// Built two ways:
//   - with -DCRSAT_FUZZ=ON (clang): a libFuzzer binary, run by CI for 60 s
//     under ASan+UBSan against the seed corpus in tests/fuzz/corpus_frame/
//     (recorded request/response frames plus malformed variants);
//   - otherwise: linked against fuzz_driver_main.cc into a replay binary
//     that runs that corpus as a plain ctest regression test.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/base/resource_guard.h"
#include "src/server/protocol.h"

namespace {

// Fuzzers run with and without NDEBUG; trap explicitly so a violated
// invariant is a crash in every build mode.
void Check(bool ok) {
  if (!ok) {
    __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using crsat::server::DecodeFrame;
  using crsat::server::DecodeResult;
  using crsat::server::Frame;

  std::string_view buffer(reinterpret_cast<const char*>(data), size);

  // Drain the buffer the way a connection loop does: frames come off the
  // front until the remainder is incomplete or condemned.
  while (!buffer.empty()) {
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    const DecodeResult result = DecodeFrame(buffer, &frame, &consumed, &error);
    if (result == DecodeResult::kNeedMore) {
      // A valid prefix shorter than one frame: appending bytes could
      // complete it, so it must be shorter than header + max payload.
      Check(buffer.size() <
            crsat::server::kFrameHeaderBytes + crsat::server::kMaxPayloadBytes);
      break;
    }
    if (result == DecodeResult::kError) {
      Check(!error.empty());  // Condemned streams carry a reason.
      break;
    }
    Check(consumed > 0 && consumed <= buffer.size());
    Check(frame.payload.size() <= crsat::server::kMaxPayloadBytes);

    // Round trip: re-encoding a decoded frame must reproduce exactly the
    // bytes consumed (the codec loses nothing and invents nothing).
    const std::string wire = crsat::server::EncodeFrame(frame);
    Check(wire == std::string(buffer.substr(0, consumed)));

    (void)crsat::server::IsKnownRequestType(frame.type);
    (void)crsat::server::ResponseStatusToString(frame.response_status());

    // The budget clamp must never hand out more than the server cap, no
    // matter what the request headers claim.
    crsat::ResourceLimits caps;
    caps.timeout = std::chrono::milliseconds(500);
    caps.max_compounds = 1000;
    const crsat::ResourceLimits limits =
        crsat::server::ClampBudget(frame, caps);
    Check(limits.timeout.has_value() && limits.timeout->count() <= 500);
    Check(limits.max_compounds.has_value() && *limits.max_compounds <= 1000);
    Check(limits.max_memory_bytes.has_value() ==
          (frame.max_memory_bytes != 0));

    buffer.remove_prefix(consumed);
  }
  return 0;
}
