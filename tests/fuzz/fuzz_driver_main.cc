// Standalone corpus driver for toolchains without libFuzzer (gcc builds):
// replays every file in the directories/files given on the command line
// through LLVMFuzzerTestOneInput. Linked with each fuzz target to form a
// `<target>_replay` binary, registered as a ctest regression test over the
// seed corpus — so the corpus keeps guarding the parser even where the
// fuzzer itself cannot run.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int ReplayFile(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(file)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path path(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) {
          files.push_back(entry.path());
        }
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (ReplayFile(file) != 0) {
          return 1;
        }
        ++replayed;
      }
    } else {
      if (ReplayFile(path) != 0) {
        return 1;
      }
      ++replayed;
    }
  }
  std::printf("replayed %d corpus inputs without a crash\n", replayed);
  return 0;
}
