// Fuzz target: the reasoning pipeline behind a resource guard. Inputs that
// parse as schemas are pushed through expansion, the disequation system,
// and the satisfiability fixpoint with tight limits (the expansion step is
// intrinsically exponential — Section 3.1 of the paper — so unguarded
// fuzzing would simply hang on the first pathological schema). Any outcome
// is acceptable except a crash, a hang, or a sanitizer finding: verdicts,
// parse errors, and resource trips are all normal.
//
// See fuzz_schema_text.cc for how the target is built and run.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/crsat.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Single-threaded keeps per-input work bounded and reports deterministic.
  static const bool pool_pinned = [] {
    crsat::SetGlobalThreadCount(1);
    return true;
  }();
  (void)pool_pinned;

  const std::string text(reinterpret_cast<const char*>(data), size);
  crsat::Result<crsat::NamedSchema> parsed = crsat::ParseSchema(text);
  if (!parsed.ok()) {
    return 0;
  }

  crsat::ResourceLimits limits;
  limits.timeout = std::chrono::milliseconds(100);
  limits.max_compounds = 10000;
  limits.max_memory_bytes = std::uint64_t{64} << 20;
  crsat::ResourceGuard guard(limits);

  crsat::ExpansionOptions options;
  options.guard = &guard;
  crsat::Result<crsat::Expansion> expansion =
      crsat::Expansion::Build(parsed->schema, options);
  if (!expansion.ok()) {
    return 0;  // Includes clean resource trips.
  }
  crsat::SatisfiabilityChecker checker(*expansion);
  checker.SetKnownEmptyClasses(
      crsat::ComputeProvablyEmpty(parsed->schema).class_empty);
  (void)checker.SatisfiableClasses();
  return 0;
}
