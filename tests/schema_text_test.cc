#include "src/cr/schema_text.h"

#include <gtest/gtest.h>

#include "src/generator/random_schema.h"

namespace crsat {
namespace {

constexpr char kMeetingText[] = R"(
// The paper's Figure 2/3 example.
schema Meeting {
  class Speaker, Discussant, Talk;
  isa Discussant < Speaker;
  relationship Holds(U1: Speaker, U2: Talk);
  relationship Participates(U3: Discussant, U4: Talk);
  card Speaker in Holds.U1 = (1, *);
  card Discussant in Holds.U1 = (0, 2);   # refinement on the subclass
  card Talk in Holds.U2 = (1, 1);
  card Discussant in Participates.U3 = (1, 1);
  card Talk in Participates.U4 = (1, *);
}
)";

TEST(SchemaTextTest, ParsesMeetingSchema) {
  NamedSchema parsed = ParseSchema(kMeetingText).value();
  EXPECT_EQ(parsed.name, "Meeting");
  const Schema& schema = parsed.schema;
  EXPECT_EQ(schema.num_classes(), 3);
  EXPECT_EQ(schema.num_relationships(), 2);
  EXPECT_EQ(schema.isa_statements().size(), 1u);
  EXPECT_EQ(schema.cardinality_declarations().size(), 5u);
  ClassId speaker = schema.FindClass("Speaker").value();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RoleId u1 = schema.FindRole("U1").value();
  Cardinality card = schema.GetCardinality(speaker, holds, u1);
  EXPECT_EQ(card.min, 1u);
  EXPECT_FALSE(card.max.has_value());
}

TEST(SchemaTextTest, ParsesExtensions) {
  constexpr char kText[] = R"(
schema Extended {
  class A, B, C;
  isa B < A;
  relationship R(U: A, V: C);
  disjoint A, C;
  cover A by B;
}
)";
  NamedSchema parsed = ParseSchema(kText).value();
  EXPECT_EQ(parsed.schema.disjointness_constraints().size(), 1u);
  EXPECT_EQ(parsed.schema.covering_constraints().size(), 1u);
}

TEST(SchemaTextTest, RoundTripsThroughPrinter) {
  NamedSchema parsed = ParseSchema(kMeetingText).value();
  std::string printed = SchemaToText(parsed.schema, parsed.name);
  NamedSchema reparsed = ParseSchema(printed).value();
  EXPECT_EQ(reparsed.name, "Meeting");
  EXPECT_EQ(SchemaToText(reparsed.schema, reparsed.name), printed);
}

TEST(SchemaTextTest, ReportsLineAndColumnOnSyntaxError) {
  constexpr char kBad[] = "schema X {\n  class A\n}\n";  // Missing ';'.
  Result<NamedSchema> result = ParseSchema(kBad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(result.status().message().find("';'"), std::string::npos);
}

TEST(SchemaTextTest, RejectsUnknownKeyword) {
  Result<NamedSchema> result =
      ParseSchema("schema X { klass A; }");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown declaration"),
            std::string::npos);
}

TEST(SchemaTextTest, RejectsUnexpectedCharacter) {
  Result<NamedSchema> result = ParseSchema("schema X @ {}");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unexpected character"),
            std::string::npos);
}

TEST(SchemaTextTest, RejectsTrailingGarbage) {
  Result<NamedSchema> result =
      ParseSchema("schema X { class A, B; relationship R(U: A, V: B); } junk");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("end of input"),
            std::string::npos);
}

TEST(SchemaTextTest, SemanticErrorsSurfaceBuilderMessages) {
  // Syntactically fine, semantically bad: B refines a role of a class it
  // is not a subclass of.
  constexpr char kText[] = R"(
schema X {
  class A, B;
  relationship R(U: A, V: A);
  card B in R.U = (1, 1);
}
)";
  Result<NamedSchema> result = ParseSchema(kText);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("subclass"), std::string::npos);
}

TEST(SchemaTextTest, NumberOverflowRejected) {
  constexpr char kText[] = R"(
schema X {
  class A;
  relationship R(U: A, V: A);
  card A in R.U = (99999999999999999999999999, *);
}
)";
  Result<NamedSchema> result = ParseSchema(kText);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("out of range"),
            std::string::npos);
}

TEST(SchemaTextTest, CommentsAndWhitespaceIgnored) {
  constexpr char kText[] =
      "schema X {  // comment\n"
      "  # another comment\n"
      "  class A, B;\n"
      "  relationship R(U: A, V: B); // trailing\n"
      "}\n";
  NamedSchema parsed = ParseSchema(kText).value();
  EXPECT_EQ(parsed.schema.num_classes(), 2);
}

// parse(render(schema)) must be the identity over the whole space the
// generator can produce — refinements, high arities, disjointness. Text
// equality after a second render proves the fixpoint without needing a
// structural Schema comparison.
TEST(SchemaTextTest, RendererAndParserRoundTripOverGeneratorSweep) {
  for (std::uint32_t seed = 1; seed <= 30; ++seed) {
    RandomSchemaParams params;
    params.seed = seed;
    params.num_classes = 6;
    params.num_relationships = 4;
    params.min_arity = 2;
    params.max_arity = 3;
    params.isa_density = 0.3;
    params.refinement_probability = 0.5;
    params.num_disjointness_groups = static_cast<int>(seed % 3);
    Result<Schema> schema = GenerateRandomSchema(params);
    ASSERT_TRUE(schema.ok()) << "seed " << seed;
    const std::string rendered = SchemaToText(*schema, "roundtrip");
    Result<NamedSchema> reparsed = ParseSchema(rendered);
    ASSERT_TRUE(reparsed.ok())
        << "seed " << seed << ": " << reparsed.status() << "\n" << rendered;
    EXPECT_EQ(SchemaToText(reparsed->schema, "roundtrip"), rendered)
        << "seed " << seed;
  }
}

TEST(SchemaTextTest, InfinityOnlyInMaxPosition) {
  Result<NamedSchema> result = ParseSchema(R"(
schema X {
  class A;
  relationship R(U: A, V: A);
  card A in R.U = (*, 1);
}
)");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace crsat
