#include "src/reasoner/implication_engine.h"

#include <gtest/gtest.h>

#include "src/reasoner/implication.h"
#include "src/reasoner/satisfiability.h"
#include "tests/test_schemas.h"

namespace crsat {
namespace {

using crsat::testing::MeetingSchema;

TEST(CardinalityImplicationEngineTest, ProbesMatchOneShotChecker) {
  Schema schema = MeetingSchema();
  ClassId speaker = schema.FindClass("Speaker").value();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RoleId u1 = schema.FindRole("U1").value();
  CardinalityImplicationEngine engine =
      CardinalityImplicationEngine::Create(schema, speaker, holds, u1)
          .value();
  for (std::uint64_t bound = 0; bound <= 4; ++bound) {
    EXPECT_EQ(engine.ImpliesMin(bound).value(),
              ImplicationChecker::ImpliesMinCardinality(schema, speaker,
                                                        holds, u1, bound)
                  .value())
        << "min " << bound;
    EXPECT_EQ(engine.ImpliesMax(bound).value(),
              ImplicationChecker::ImpliesMaxCardinality(schema, speaker,
                                                        holds, u1, bound)
                  .value())
        << "max " << bound;
  }
}

TEST(CardinalityImplicationEngineTest, TightestBoundsMatchFigure7) {
  Schema schema = MeetingSchema();
  ClassId speaker = schema.FindClass("Speaker").value();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RoleId u1 = schema.FindRole("U1").value();
  CardinalityImplicationEngine engine =
      CardinalityImplicationEngine::Create(schema, speaker, holds, u1)
          .value();
  EXPECT_EQ(engine.TightestMin().value(), 1u);
  EXPECT_EQ(engine.TightestMax().value(), std::optional<std::uint64_t>(1));
  EXPECT_TRUE(engine.IsBaseClassSatisfiable().value());
}

TEST(CardinalityImplicationEngineTest, RejectsInvalidTriples) {
  Schema schema = MeetingSchema();
  ClassId talk = schema.FindClass("Talk").value();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RoleId u1 = schema.FindRole("U1").value();
  RoleId u4 = schema.FindRole("U4").value();
  // Talk is not a subclass of Speaker.
  EXPECT_FALSE(
      CardinalityImplicationEngine::Create(schema, talk, holds, u1).ok());
  // U4 does not belong to Holds.
  EXPECT_FALSE(
      CardinalityImplicationEngine::Create(schema, talk, holds, u4).ok());
}

TEST(CardinalityImplicationEngineTest, UnsatisfiableBaseClassReported) {
  Schema schema = crsat::testing::Figure1Schema();
  ClassId c = schema.FindClass("C").value();
  RelationshipId r = schema.FindRelationship("R").value();
  RoleId v1 = schema.FindRole("V1").value();
  CardinalityImplicationEngine engine =
      CardinalityImplicationEngine::Create(schema, c, r, v1).value();
  EXPECT_FALSE(engine.IsBaseClassSatisfiable().value());
  EXPECT_FALSE(engine.TightestMin().ok());
  EXPECT_FALSE(engine.TightestMax().ok());
  // Vacuous implication still answers.
  EXPECT_TRUE(engine.ImpliesMin(100).value());
  EXPECT_TRUE(engine.ImpliesMax(0).value());
}

TEST(ImpliedCardinalityReportTest, MeetingReportMatchesFigure7) {
  Schema schema = MeetingSchema();
  std::vector<ImpliedCardinalityRow> rows =
      BuildImpliedCardinalityReport(schema).value();
  // Legal triples: Holds.U1 x {Speaker, Discussant}, Holds.U2 x {Talk},
  // Participates.U3 x {Discussant}, Participates.U4 x {Talk}.
  ASSERT_EQ(rows.size(), 5u);
  ClassId speaker = schema.FindClass("Speaker").value();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RoleId u1 = schema.FindRole("U1").value();
  bool found_headline = false;
  for (const ImpliedCardinalityRow& row : rows) {
    EXPECT_FALSE(row.vacuous);
    // The schema forces every counted triple to exactly one tuple.
    EXPECT_EQ(row.implied_min, 1u);
    EXPECT_EQ(row.implied_max, std::optional<std::uint64_t>(1));
    if (row.cls == speaker && row.rel == holds && row.role == u1) {
      found_headline = true;
      EXPECT_EQ(row.declared.min, 1u);
      EXPECT_FALSE(row.declared.max.has_value());
    }
  }
  EXPECT_TRUE(found_headline);
  std::string table = ImpliedCardinalityReportToString(schema, rows);
  EXPECT_NE(table.find("Speaker / Holds.U1"), std::string::npos);
  EXPECT_NE(table.find("(1, 1)"), std::string::npos);
}

TEST(ImpliedCardinalityReportTest, VacuousRowsForUnsatisfiableClasses) {
  Schema schema = crsat::testing::Figure1Schema();
  std::vector<ImpliedCardinalityRow> rows =
      BuildImpliedCardinalityReport(schema).value();
  // Triples: R.V1 x {C, D}, R.V2 x {D}.
  ASSERT_EQ(rows.size(), 3u);
  for (const ImpliedCardinalityRow& row : rows) {
    EXPECT_TRUE(row.vacuous);
  }
  std::string table = ImpliedCardinalityReportToString(schema, rows);
  EXPECT_NE(table.find("vacuous"), std::string::npos);
}

TEST(ExtensionImplicationTest, DisjointnessImpliedAndRefuted) {
  // Speaker and Talk can overlap in the meeting schema (nothing forbids a
  // talk that speaks); Discussant and Talk likewise. But in a schema with
  // declared disjointness the implication holds.
  Schema schema = MeetingSchema();
  ClassId speaker = schema.FindClass("Speaker").value();
  ClassId talk = schema.FindClass("Talk").value();
  EXPECT_FALSE(
      ImplicationChecker::ImpliesDisjointness(schema, speaker, talk).value());

  SchemaBuilder builder = schema.ToBuilder();
  builder.AddDisjointness({"Speaker", "Talk"});
  Schema disjoint_schema = builder.Build().value();
  EXPECT_TRUE(ImplicationChecker::ImpliesDisjointness(
                  disjoint_schema,
                  disjoint_schema.FindClass("Speaker").value(),
                  disjoint_schema.FindClass("Talk").value())
                  .value());
}

TEST(ExtensionImplicationTest, DisjointnessImpliedThroughCardinalities) {
  // A and B are never declared disjoint, but their cardinality pressure
  // makes overlap impossible: an A-and-B individual would need both
  // exactly 1 and exactly 3 R-tuples.
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddClass("T");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "T"}});
  builder.AddRelationship("S", {{"W", "B"}, {"X", "T"}});
  builder.AddClass("AB");
  builder.AddIsa("AB", "A");
  builder.AddIsa("AB", "B");
  builder.SetCardinality("A", "R", "U", {1, 1});
  builder.SetCardinality("AB", "R", "U", {3, std::nullopt});
  Schema schema = builder.Build().value();
  // AB (the explicit overlap class) is unsatisfiable...
  Expansion expansion = Expansion::Build(schema).value();
  SatisfiabilityChecker checker(expansion);
  EXPECT_FALSE(
      checker.IsClassSatisfiable(schema.FindClass("AB").value()).value());
  // ...but plain A-and-B overlap (without the AB class) is still possible,
  // so disjointness of A and B is NOT implied.
  EXPECT_FALSE(ImplicationChecker::ImpliesDisjointness(
                   schema, schema.FindClass("A").value(),
                   schema.FindClass("B").value())
                   .value());
}

TEST(ExtensionImplicationTest, CoveringImpliedByStructure) {
  // Every Speaker is a Discussant in the meeting schema (Figure 7), so
  // {Discussant} covers Speaker.
  Schema schema = MeetingSchema();
  ClassId speaker = schema.FindClass("Speaker").value();
  ClassId discussant = schema.FindClass("Discussant").value();
  ClassId talk = schema.FindClass("Talk").value();
  EXPECT_TRUE(ImplicationChecker::ImpliesCovering(schema, speaker,
                                                  {discussant})
                  .value());
  EXPECT_FALSE(
      ImplicationChecker::ImpliesCovering(schema, talk, {discussant})
          .value());
  // A class trivially covers itself.
  EXPECT_TRUE(
      ImplicationChecker::ImpliesCovering(schema, talk, {talk}).value());
}

TEST(ExtensionImplicationTest, DeclaredCoveringIsImplied) {
  SchemaBuilder builder;
  builder.AddClass("Person");
  builder.AddClass("Adult");
  builder.AddClass("Minor");
  builder.AddIsa("Adult", "Person");
  builder.AddIsa("Minor", "Person");
  builder.AddRelationship("R", {{"U", "Person"}, {"V", "Person"}});
  builder.AddCovering("Person", {"Adult", "Minor"});
  Schema schema = builder.Build().value();
  EXPECT_TRUE(ImplicationChecker::ImpliesCovering(
                  schema, schema.FindClass("Person").value(),
                  {schema.FindClass("Adult").value(),
                   schema.FindClass("Minor").value()})
                  .value());
  // The individual coverers alone do not cover.
  EXPECT_FALSE(ImplicationChecker::ImpliesCovering(
                   schema, schema.FindClass("Person").value(),
                   {schema.FindClass("Adult").value()})
                   .value());
}

}  // namespace
}  // namespace crsat
