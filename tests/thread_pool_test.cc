// Tests for the fixed-size task pool backing the reasoner's parallel LP
// probes (src/base/thread_pool.h).

#include "src/base/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace crsat {
namespace {

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroAndSingleIterationRunInline) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadPoolHasNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  // With no workers every index runs inline on the caller, in order.
  pool.ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(3);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 8;
  std::vector<std::atomic<int>> counts(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](size_t i) {
    // A worker that re-enters ParallelFor must not wait on its own pool.
    pool.ParallelFor(kInner, [&](size_t j) {
      counts[i * kInner + j].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (size_t k = 0; k < counts.size(); ++k) {
    EXPECT_EQ(counts[k].load(), 1) << "cell " << k;
  }
}

TEST(ThreadPoolTest, ParallelForSumsMatchSerial) {
  ThreadPool pool(4);
  constexpr size_t kN = 4096;
  std::vector<long> values(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    values[i] = static_cast<long>(i) * 3 - 7;
  });
  long expected = 0;
  for (size_t i = 0; i < kN; ++i) {
    expected += static_cast<long>(i) * 3 - 7;
  }
  EXPECT_EQ(std::accumulate(values.begin(), values.end(), 0L), expected);
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvironment) {
  ASSERT_EQ(setenv("CRSAT_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3);
  ASSERT_EQ(setenv("CRSAT_THREADS", "garbage", 1), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);  // Falls back to hardware.
  ASSERT_EQ(setenv("CRSAT_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  ASSERT_EQ(unsetenv("CRSAT_THREADS"), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(ThreadPoolTest, GlobalPoolRespectsSetGlobalThreadCount) {
  SetGlobalThreadCount(2);
  EXPECT_EQ(GlobalThreadCount(), 2);
  EXPECT_EQ(GlobalThreadPool().num_threads(), 2);
  SetGlobalThreadCount(1);
  EXPECT_EQ(GlobalThreadCount(), 1);
  // 0 = auto.
  SetGlobalThreadCount(0);
  EXPECT_EQ(GlobalThreadCount(), ThreadPool::DefaultThreadCount());
}

TEST(ThreadPoolTest, PostRunsEveryTaskExactlyOnce) {
  // Fire-and-forget dispatch (the crsatd scheduler's path onto the
  // pool): every posted task runs once; the destructor drains the queue
  // before joining, so nothing is lost at teardown.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 500; ++i) {
      pool.Post([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPoolTest, PostOnParallelismOneRunsInline) {
  // A pool of parallelism 1 owns no workers: Post executes the task on
  // the calling thread before returning — the documented contract the
  // scheduler's pump loop is written to tolerate.
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  bool done = false;
  pool.Post([&] {
    ran_on = std::this_thread::get_id();
    done = true;  // No synchronization needed: inline means sequenced.
  });
  EXPECT_TRUE(done);
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, PostOnWorkersRunsOffTheCallingThread) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  std::atomic<bool> off_thread{false};
  const std::thread::id caller = std::this_thread::get_id();
  pool.Post([&] {
    off_thread.store(std::this_thread::get_id() != caller);
    done.store(true);
  });
  while (!done.load()) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(off_thread.load());
}

TEST(ThreadPoolTest, ManyConcurrentSmallLoops) {
  ThreadPool pool(4);
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::atomic<int> sum{0};
    pool.ParallelFor(7, [&](size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 21);
  }
}

}  // namespace
}  // namespace crsat
