#include "src/flow/max_flow.h"

#include <gtest/gtest.h>

namespace crsat {
namespace {

TEST(MaxFlowTest, SingleEdge) {
  MaxFlowGraph graph(2);
  int edge = graph.AddEdge(0, 1, 5);
  EXPECT_EQ(graph.Solve(0, 1).value(), 5);
  EXPECT_EQ(graph.EdgeFlow(edge), 5);
}

TEST(MaxFlowTest, SeriesBottleneck) {
  MaxFlowGraph graph(3);
  graph.AddEdge(0, 1, 10);
  graph.AddEdge(1, 2, 3);
  EXPECT_EQ(graph.Solve(0, 2).value(), 3);
}

TEST(MaxFlowTest, ParallelPathsAdd) {
  MaxFlowGraph graph(4);
  graph.AddEdge(0, 1, 3);
  graph.AddEdge(1, 3, 3);
  graph.AddEdge(0, 2, 4);
  graph.AddEdge(2, 3, 4);
  EXPECT_EQ(graph.Solve(0, 3).value(), 7);
}

TEST(MaxFlowTest, ClassicCLRSNetwork) {
  // CLRS figure 26.1; max flow 23.
  MaxFlowGraph graph(6);
  graph.AddEdge(0, 1, 16);
  graph.AddEdge(0, 2, 13);
  graph.AddEdge(1, 2, 10);
  graph.AddEdge(2, 1, 4);
  graph.AddEdge(1, 3, 12);
  graph.AddEdge(3, 2, 9);
  graph.AddEdge(2, 4, 14);
  graph.AddEdge(4, 3, 7);
  graph.AddEdge(3, 5, 20);
  graph.AddEdge(4, 5, 4);
  EXPECT_EQ(graph.Solve(0, 5).value(), 23);
}

TEST(MaxFlowTest, DisconnectedSinkGivesZero) {
  MaxFlowGraph graph(4);
  graph.AddEdge(0, 1, 5);
  // Node 3 unreachable.
  EXPECT_EQ(graph.Solve(0, 3).value(), 0);
}

TEST(MaxFlowTest, ZeroCapacityEdgeCarriesNothing) {
  MaxFlowGraph graph(2);
  int edge = graph.AddEdge(0, 1, 0);
  EXPECT_EQ(graph.Solve(0, 1).value(), 0);
  EXPECT_EQ(graph.EdgeFlow(edge), 0);
}

TEST(MaxFlowTest, FlowConservationOnEdges) {
  MaxFlowGraph graph(5);
  int a = graph.AddEdge(0, 1, 4);
  int b = graph.AddEdge(0, 2, 2);
  int c = graph.AddEdge(1, 3, 3);
  int d = graph.AddEdge(2, 3, 3);
  int e = graph.AddEdge(3, 4, 5);
  EXPECT_EQ(graph.Solve(0, 4).value(), 5);
  // Conservation at node 3: inflow == outflow.
  EXPECT_EQ(graph.EdgeFlow(c) + graph.EdgeFlow(d), graph.EdgeFlow(e));
  EXPECT_EQ(graph.EdgeFlow(a) + graph.EdgeFlow(b), 5);
  EXPECT_LE(graph.EdgeFlow(a), 4);
  EXPECT_LE(graph.EdgeFlow(b), 2);
}

TEST(MaxFlowTest, BipartiteDegreeConstrainedAssignment) {
  // The model-builder shape: 3 tuple groups x 2 values with quotas.
  // Groups sizes {2,1,1}, values quotas {2,2}: perfect routing of 4 units.
  MaxFlowGraph graph(7);  // 0=src, 1=sink, 2..4 groups, 5..6 values.
  graph.AddEdge(0, 2, 2);
  graph.AddEdge(0, 3, 1);
  graph.AddEdge(0, 4, 1);
  graph.AddEdge(5, 1, 2);
  graph.AddEdge(6, 1, 2);
  for (int g = 2; g <= 4; ++g) {
    for (int v = 5; v <= 6; ++v) {
      graph.AddEdge(g, v, 1);  // Congestion cap 1.
    }
  }
  EXPECT_EQ(graph.Solve(0, 1).value(), 4);
}

TEST(MaxFlowTest, InvalidArgumentsRejected) {
  MaxFlowGraph graph(3);
  graph.AddEdge(0, 1, 1);
  EXPECT_FALSE(graph.Solve(0, 0).ok());
  EXPECT_FALSE(graph.Solve(-1, 2).ok());
  EXPECT_FALSE(graph.Solve(0, 3).ok());
}

TEST(MaxFlowTest, ReusableAfterSolveOnResidualState) {
  // Solving twice returns 0 more flow the second time (residual saturated).
  MaxFlowGraph graph(2);
  graph.AddEdge(0, 1, 5);
  EXPECT_EQ(graph.Solve(0, 1).value(), 5);
  EXPECT_EQ(graph.Solve(0, 1).value(), 0);
}

}  // namespace
}  // namespace crsat
