#include "src/reasoner/implication.h"

#include <gtest/gtest.h>

#include "tests/test_schemas.h"

namespace crsat {
namespace {

using crsat::testing::MeetingSchema;

class Figure7Test : public ::testing::Test {
 protected:
  void SetUp() override {
    speaker_ = schema_.FindClass("Speaker").value();
    discussant_ = schema_.FindClass("Discussant").value();
    talk_ = schema_.FindClass("Talk").value();
    holds_ = schema_.FindRelationship("Holds").value();
    participates_ = schema_.FindRelationship("Participates").value();
    u1_ = schema_.FindRole("U1").value();
    u2_ = schema_.FindRole("U2").value();
    u3_ = schema_.FindRole("U3").value();
    u4_ = schema_.FindRole("U4").value();
  }

  Schema schema_ = MeetingSchema();
  ClassId speaker_, discussant_, talk_;
  RelationshipId holds_, participates_;
  RoleId u1_, u2_, u3_, u4_;
};

TEST_F(Figure7Test, SpeakerIsaDiscussantIsImplied) {
  // Figure 7, first inference: S |= Speaker <= Discussant (the reverse of
  // the declared ISA!).
  EXPECT_TRUE(
      ImplicationChecker::ImpliesIsa(schema_, speaker_, discussant_).value());
}

TEST_F(Figure7Test, MaxOneParticipationPerTalkIsImplied) {
  // Figure 7, second inference: maxc(Talk, Participates, U4) = 1.
  EXPECT_TRUE(ImplicationChecker::ImpliesMaxCardinality(
                  schema_, talk_, participates_, u4_, 1)
                  .value());
  EXPECT_FALSE(ImplicationChecker::ImpliesMaxCardinality(
                   schema_, talk_, participates_, u4_, 0)
                   .value());
}

TEST_F(Figure7Test, MaxOneHoldingPerSpeakerIsImplied) {
  // Figure 7, third inference: maxc(Speaker, Holds, U1) = 1, strictly
  // tighter than both the declared (1, inf) and the refinement (0, 2).
  EXPECT_TRUE(ImplicationChecker::ImpliesMaxCardinality(schema_, speaker_,
                                                        holds_, u1_, 1)
                  .value());
  EXPECT_FALSE(ImplicationChecker::ImpliesMaxCardinality(schema_, speaker_,
                                                         holds_, u1_, 0)
                   .value());
}

TEST_F(Figure7Test, DeclaredIsaIsImplied) {
  EXPECT_TRUE(
      ImplicationChecker::ImpliesIsa(schema_, discussant_, speaker_).value());
}

TEST_F(Figure7Test, ReflexiveIsaAlwaysImplied) {
  EXPECT_TRUE(
      ImplicationChecker::ImpliesIsa(schema_, talk_, talk_).value());
}

TEST_F(Figure7Test, NonImpliedIsaRejected) {
  EXPECT_FALSE(
      ImplicationChecker::ImpliesIsa(schema_, talk_, speaker_).value());
  EXPECT_FALSE(
      ImplicationChecker::ImpliesIsa(schema_, speaker_, talk_).value());
}

TEST_F(Figure7Test, ImpliedMinCardinalities) {
  // Every discussant participates exactly once (declared) and the schema
  // forces every speaker to hold exactly one talk: minc 1 is implied, 2 is
  // not.
  EXPECT_TRUE(ImplicationChecker::ImpliesMinCardinality(schema_, speaker_,
                                                        holds_, u1_, 1)
                  .value());
  EXPECT_FALSE(ImplicationChecker::ImpliesMinCardinality(schema_, speaker_,
                                                         holds_, u1_, 2)
                   .value());
  // Trivial bound always implied.
  EXPECT_TRUE(ImplicationChecker::ImpliesMinCardinality(schema_, speaker_,
                                                        holds_, u1_, 0)
                  .value());
}

TEST_F(Figure7Test, TightestBoundsMatchTheInferences) {
  EXPECT_EQ(ImplicationChecker::TightestImpliedMin(schema_, speaker_, holds_,
                                                   u1_)
                .value(),
            1u);
  EXPECT_EQ(ImplicationChecker::TightestImpliedMax(schema_, speaker_, holds_,
                                                   u1_)
                .value(),
            std::optional<std::uint64_t>(1));
  EXPECT_EQ(ImplicationChecker::TightestImpliedMax(schema_, talk_,
                                                   participates_, u4_)
                .value(),
            std::optional<std::uint64_t>(1));
  EXPECT_EQ(ImplicationChecker::TightestImpliedMin(schema_, talk_,
                                                   participates_, u4_)
                .value(),
            1u);
  EXPECT_EQ(ImplicationChecker::TightestImpliedMax(schema_, talk_, holds_,
                                                   u2_)
                .value(),
            std::optional<std::uint64_t>(1));
}

TEST_F(Figure7Test, UnboundedMaxReportsNoBound) {
  // In a schema without interaction, Speaker's holdings are genuinely
  // unbounded.
  SchemaBuilder builder;
  builder.AddClass("Speaker");
  builder.AddClass("Talk");
  builder.AddRelationship("Holds", {{"U1", "Speaker"}, {"U2", "Talk"}});
  builder.SetCardinality("Speaker", "Holds", "U1", {1, std::nullopt});
  Schema schema = builder.Build().value();
  ClassId speaker = schema.FindClass("Speaker").value();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RoleId u1 = schema.FindRole("U1").value();
  EXPECT_EQ(
      ImplicationChecker::TightestImpliedMax(schema, speaker, holds, u1, 8)
          .value(),
      std::nullopt);
  EXPECT_EQ(
      ImplicationChecker::TightestImpliedMin(schema, speaker, holds, u1)
          .value(),
      1u);
}

TEST_F(Figure7Test, RefinementTripleValidation) {
  // Talk is not a subclass of Speaker, so (Talk, Holds, U1) is ill-formed.
  Result<bool> result =
      ImplicationChecker::ImpliesMaxCardinality(schema_, talk_, holds_, u1_, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // Role from the wrong relationship.
  Result<bool> wrong_role = ImplicationChecker::ImpliesMaxCardinality(
      schema_, talk_, holds_, u4_, 1);
  ASSERT_FALSE(wrong_role.ok());
}

TEST_F(Figure7Test, TightestBoundsRejectUnsatisfiableClass) {
  Schema schema = crsat::testing::Figure1Schema();
  ClassId c = schema.FindClass("C").value();
  RelationshipId r = schema.FindRelationship("R").value();
  RoleId v1 = schema.FindRole("V1").value();
  Result<std::uint64_t> min_result =
      ImplicationChecker::TightestImpliedMin(schema, c, r, v1);
  ASSERT_FALSE(min_result.ok());
  EXPECT_NE(min_result.status().message().find("unsatisfiable"),
            std::string::npos);
  EXPECT_FALSE(
      ImplicationChecker::TightestImpliedMax(schema, c, r, v1).ok());
}

TEST_F(Figure7Test, VacuousImplicationForUnsatisfiableClass) {
  // In Figure 1's schema every class is empty, so any constraint on them
  // is implied.
  Schema schema = crsat::testing::Figure1Schema();
  ClassId c = schema.FindClass("C").value();
  ClassId d = schema.FindClass("D").value();
  RelationshipId r = schema.FindRelationship("R").value();
  RoleId v1 = schema.FindRole("V1").value();
  EXPECT_TRUE(ImplicationChecker::ImpliesIsa(schema, c, d).value());
  EXPECT_TRUE(
      ImplicationChecker::ImpliesMaxCardinality(schema, c, r, v1, 0).value());
  EXPECT_TRUE(ImplicationChecker::ImpliesMinCardinality(schema, c, r, v1,
                                                        100)
                  .value());
}

TEST_F(Figure7Test, EagerDiscussantVariantImpliesEverything) {
  // With the Section 3.3 extra constraint the schema admits only the empty
  // model, so even contradictory-looking statements are implied.
  Schema schema = crsat::testing::MeetingSchemaWithEagerDiscussants();
  ClassId speaker = schema.FindClass("Speaker").value();
  ClassId talk = schema.FindClass("Talk").value();
  EXPECT_TRUE(ImplicationChecker::ImpliesIsa(schema, speaker, talk).value());
  EXPECT_TRUE(ImplicationChecker::ImpliesIsa(schema, talk, speaker).value());
}

TEST_F(Figure7Test, ImpliedIsaClosureMatchesPairwiseQueries) {
  std::vector<std::vector<bool>> closure =
      ImplicationChecker::ImpliedIsaClosure(schema_).value();
  for (ClassId c : schema_.AllClasses()) {
    for (ClassId d : schema_.AllClasses()) {
      bool pairwise =
          ImplicationChecker::ImpliesIsa(schema_, c, d).value();
      EXPECT_EQ(closure[c.value][d.value], pairwise)
          << schema_.ClassName(c) << " <= " << schema_.ClassName(d);
    }
  }
  // The Figure 7 headline: Speaker <= Discussant is implied although only
  // Discussant <= Speaker is declared.
  EXPECT_TRUE(closure[speaker_.value][discussant_.value]);
  EXPECT_TRUE(closure[discussant_.value][speaker_.value]);
  EXPECT_FALSE(closure[talk_.value][speaker_.value]);
  EXPECT_FALSE(closure[speaker_.value][talk_.value]);
}

TEST_F(Figure7Test, ImpliedIsaClosureSupersetOfDeclaredClosure) {
  std::vector<std::vector<bool>> closure =
      ImplicationChecker::ImpliedIsaClosure(schema_).value();
  for (ClassId c : schema_.AllClasses()) {
    for (ClassId d : schema_.AllClasses()) {
      if (schema_.IsSubclassOf(c, d)) {
        EXPECT_TRUE(closure[c.value][d.value]);
      }
    }
  }
}

TEST_F(Figure7Test, ImpliedIsaClosureVacuousForUnsatisfiableClasses) {
  Schema schema = crsat::testing::Figure1Schema();
  std::vector<std::vector<bool>> closure =
      ImplicationChecker::ImpliedIsaClosure(schema).value();
  // Both classes empty in every model: everything is implied.
  EXPECT_TRUE(closure[0][1]);
  EXPECT_TRUE(closure[1][0]);
}

TEST_F(Figure7Test, FreshAuxiliaryNameAvoidsCollisions) {
  // A schema that already uses the auxiliary name must still work.
  SchemaBuilder builder;
  builder.AddClass("__Cexc");
  builder.AddClass("B");
  builder.AddRelationship("R", {{"U", "__Cexc"}, {"V", "B"}});
  builder.SetCardinality("__Cexc", "R", "U", {1, 1});
  Schema schema = builder.Build().value();
  ClassId cexc = schema.FindClass("__Cexc").value();
  RelationshipId r = schema.FindRelationship("R").value();
  RoleId u = schema.FindRole("U").value();
  EXPECT_TRUE(
      ImplicationChecker::ImpliesMaxCardinality(schema, cexc, r, u, 1)
          .value());
  EXPECT_FALSE(
      ImplicationChecker::ImpliesMaxCardinality(schema, cexc, r, u, 0)
          .value());
}

}  // namespace
}  // namespace crsat
