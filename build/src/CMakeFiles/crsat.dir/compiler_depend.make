# Empty compiler generated dependencies file for crsat.
# This may be replaced when dependencies are built.
