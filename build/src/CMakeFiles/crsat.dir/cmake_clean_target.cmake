file(REMOVE_RECURSE
  "libcrsat.a"
)
