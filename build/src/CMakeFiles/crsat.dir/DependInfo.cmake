
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/status.cc" "src/CMakeFiles/crsat.dir/base/status.cc.o" "gcc" "src/CMakeFiles/crsat.dir/base/status.cc.o.d"
  "/root/repo/src/base/string_util.cc" "src/CMakeFiles/crsat.dir/base/string_util.cc.o" "gcc" "src/CMakeFiles/crsat.dir/base/string_util.cc.o.d"
  "/root/repo/src/baseline/ln_reasoner.cc" "src/CMakeFiles/crsat.dir/baseline/ln_reasoner.cc.o" "gcc" "src/CMakeFiles/crsat.dir/baseline/ln_reasoner.cc.o.d"
  "/root/repo/src/cr/interpretation.cc" "src/CMakeFiles/crsat.dir/cr/interpretation.cc.o" "gcc" "src/CMakeFiles/crsat.dir/cr/interpretation.cc.o.d"
  "/root/repo/src/cr/model_checker.cc" "src/CMakeFiles/crsat.dir/cr/model_checker.cc.o" "gcc" "src/CMakeFiles/crsat.dir/cr/model_checker.cc.o.d"
  "/root/repo/src/cr/schema.cc" "src/CMakeFiles/crsat.dir/cr/schema.cc.o" "gcc" "src/CMakeFiles/crsat.dir/cr/schema.cc.o.d"
  "/root/repo/src/cr/schema_builder.cc" "src/CMakeFiles/crsat.dir/cr/schema_builder.cc.o" "gcc" "src/CMakeFiles/crsat.dir/cr/schema_builder.cc.o.d"
  "/root/repo/src/cr/schema_text.cc" "src/CMakeFiles/crsat.dir/cr/schema_text.cc.o" "gcc" "src/CMakeFiles/crsat.dir/cr/schema_text.cc.o.d"
  "/root/repo/src/cr/state_text.cc" "src/CMakeFiles/crsat.dir/cr/state_text.cc.o" "gcc" "src/CMakeFiles/crsat.dir/cr/state_text.cc.o.d"
  "/root/repo/src/expansion/compound.cc" "src/CMakeFiles/crsat.dir/expansion/compound.cc.o" "gcc" "src/CMakeFiles/crsat.dir/expansion/compound.cc.o.d"
  "/root/repo/src/expansion/expansion.cc" "src/CMakeFiles/crsat.dir/expansion/expansion.cc.o" "gcc" "src/CMakeFiles/crsat.dir/expansion/expansion.cc.o.d"
  "/root/repo/src/flow/max_flow.cc" "src/CMakeFiles/crsat.dir/flow/max_flow.cc.o" "gcc" "src/CMakeFiles/crsat.dir/flow/max_flow.cc.o.d"
  "/root/repo/src/generator/random_schema.cc" "src/CMakeFiles/crsat.dir/generator/random_schema.cc.o" "gcc" "src/CMakeFiles/crsat.dir/generator/random_schema.cc.o.d"
  "/root/repo/src/lp/fourier_motzkin.cc" "src/CMakeFiles/crsat.dir/lp/fourier_motzkin.cc.o" "gcc" "src/CMakeFiles/crsat.dir/lp/fourier_motzkin.cc.o.d"
  "/root/repo/src/lp/homogeneous.cc" "src/CMakeFiles/crsat.dir/lp/homogeneous.cc.o" "gcc" "src/CMakeFiles/crsat.dir/lp/homogeneous.cc.o.d"
  "/root/repo/src/lp/linear_expr.cc" "src/CMakeFiles/crsat.dir/lp/linear_expr.cc.o" "gcc" "src/CMakeFiles/crsat.dir/lp/linear_expr.cc.o.d"
  "/root/repo/src/lp/linear_system.cc" "src/CMakeFiles/crsat.dir/lp/linear_system.cc.o" "gcc" "src/CMakeFiles/crsat.dir/lp/linear_system.cc.o.d"
  "/root/repo/src/lp/simplex.cc" "src/CMakeFiles/crsat.dir/lp/simplex.cc.o" "gcc" "src/CMakeFiles/crsat.dir/lp/simplex.cc.o.d"
  "/root/repo/src/math/bigint.cc" "src/CMakeFiles/crsat.dir/math/bigint.cc.o" "gcc" "src/CMakeFiles/crsat.dir/math/bigint.cc.o.d"
  "/root/repo/src/math/rational.cc" "src/CMakeFiles/crsat.dir/math/rational.cc.o" "gcc" "src/CMakeFiles/crsat.dir/math/rational.cc.o.d"
  "/root/repo/src/reasoner/implication.cc" "src/CMakeFiles/crsat.dir/reasoner/implication.cc.o" "gcc" "src/CMakeFiles/crsat.dir/reasoner/implication.cc.o.d"
  "/root/repo/src/reasoner/implication_engine.cc" "src/CMakeFiles/crsat.dir/reasoner/implication_engine.cc.o" "gcc" "src/CMakeFiles/crsat.dir/reasoner/implication_engine.cc.o.d"
  "/root/repo/src/reasoner/model_builder.cc" "src/CMakeFiles/crsat.dir/reasoner/model_builder.cc.o" "gcc" "src/CMakeFiles/crsat.dir/reasoner/model_builder.cc.o.d"
  "/root/repo/src/reasoner/repair.cc" "src/CMakeFiles/crsat.dir/reasoner/repair.cc.o" "gcc" "src/CMakeFiles/crsat.dir/reasoner/repair.cc.o.d"
  "/root/repo/src/reasoner/satisfiability.cc" "src/CMakeFiles/crsat.dir/reasoner/satisfiability.cc.o" "gcc" "src/CMakeFiles/crsat.dir/reasoner/satisfiability.cc.o.d"
  "/root/repo/src/reasoner/system_builder.cc" "src/CMakeFiles/crsat.dir/reasoner/system_builder.cc.o" "gcc" "src/CMakeFiles/crsat.dir/reasoner/system_builder.cc.o.d"
  "/root/repo/src/reasoner/unsat_core.cc" "src/CMakeFiles/crsat.dir/reasoner/unsat_core.cc.o" "gcc" "src/CMakeFiles/crsat.dir/reasoner/unsat_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
