# Empty dependencies file for ln_reasoner_test.
# This may be replaced when dependencies are built.
