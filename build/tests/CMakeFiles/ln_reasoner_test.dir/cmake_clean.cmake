file(REMOVE_RECURSE
  "CMakeFiles/ln_reasoner_test.dir/ln_reasoner_test.cc.o"
  "CMakeFiles/ln_reasoner_test.dir/ln_reasoner_test.cc.o.d"
  "ln_reasoner_test"
  "ln_reasoner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ln_reasoner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
