file(REMOVE_RECURSE
  "CMakeFiles/random_schema_test.dir/random_schema_test.cc.o"
  "CMakeFiles/random_schema_test.dir/random_schema_test.cc.o.d"
  "random_schema_test"
  "random_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
