file(REMOVE_RECURSE
  "CMakeFiles/model_checker_test.dir/model_checker_test.cc.o"
  "CMakeFiles/model_checker_test.dir/model_checker_test.cc.o.d"
  "model_checker_test"
  "model_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
