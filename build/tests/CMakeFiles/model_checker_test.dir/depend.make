# Empty dependencies file for model_checker_test.
# This may be replaced when dependencies are built.
