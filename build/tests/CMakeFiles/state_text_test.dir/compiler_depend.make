# Empty compiler generated dependencies file for state_text_test.
# This may be replaced when dependencies are built.
