file(REMOVE_RECURSE
  "CMakeFiles/state_text_test.dir/state_text_test.cc.o"
  "CMakeFiles/state_text_test.dir/state_text_test.cc.o.d"
  "state_text_test"
  "state_text_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
