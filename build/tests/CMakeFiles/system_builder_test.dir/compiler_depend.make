# Empty compiler generated dependencies file for system_builder_test.
# This may be replaced when dependencies are built.
