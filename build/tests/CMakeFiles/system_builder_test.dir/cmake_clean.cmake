file(REMOVE_RECURSE
  "CMakeFiles/system_builder_test.dir/system_builder_test.cc.o"
  "CMakeFiles/system_builder_test.dir/system_builder_test.cc.o.d"
  "system_builder_test"
  "system_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
