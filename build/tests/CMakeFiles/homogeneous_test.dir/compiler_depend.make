# Empty compiler generated dependencies file for homogeneous_test.
# This may be replaced when dependencies are built.
