file(REMOVE_RECURSE
  "CMakeFiles/implication_engine_test.dir/implication_engine_test.cc.o"
  "CMakeFiles/implication_engine_test.dir/implication_engine_test.cc.o.d"
  "implication_engine_test"
  "implication_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implication_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
