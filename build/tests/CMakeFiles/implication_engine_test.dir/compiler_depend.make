# Empty compiler generated dependencies file for implication_engine_test.
# This may be replaced when dependencies are built.
