# Empty dependencies file for unsat_core_test.
# This may be replaced when dependencies are built.
