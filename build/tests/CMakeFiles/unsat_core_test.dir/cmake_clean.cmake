file(REMOVE_RECURSE
  "CMakeFiles/unsat_core_test.dir/unsat_core_test.cc.o"
  "CMakeFiles/unsat_core_test.dir/unsat_core_test.cc.o.d"
  "unsat_core_test"
  "unsat_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsat_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
