# Empty compiler generated dependencies file for schema_debugging.
# This may be replaced when dependencies are built.
