file(REMOVE_RECURSE
  "CMakeFiles/schema_debugging.dir/schema_debugging.cpp.o"
  "CMakeFiles/schema_debugging.dir/schema_debugging.cpp.o.d"
  "schema_debugging"
  "schema_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
