# Empty dependencies file for oo_attributes.
# This may be replaced when dependencies are built.
