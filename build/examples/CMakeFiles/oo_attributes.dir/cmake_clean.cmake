file(REMOVE_RECURSE
  "CMakeFiles/oo_attributes.dir/oo_attributes.cpp.o"
  "CMakeFiles/oo_attributes.dir/oo_attributes.cpp.o.d"
  "oo_attributes"
  "oo_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
