file(REMOVE_RECURSE
  "CMakeFiles/crsat_cli.dir/crsat_cli.cpp.o"
  "CMakeFiles/crsat_cli.dir/crsat_cli.cpp.o.d"
  "crsat_cli"
  "crsat_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crsat_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
