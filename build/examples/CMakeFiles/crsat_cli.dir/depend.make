# Empty dependencies file for crsat_cli.
# This may be replaced when dependencies are built.
