# Empty dependencies file for bench_fig7_implication.
# This may be replaced when dependencies are built.
