file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_implication.dir/bench_fig7_implication.cc.o"
  "CMakeFiles/bench_fig7_implication.dir/bench_fig7_implication.cc.o.d"
  "bench_fig7_implication"
  "bench_fig7_implication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_implication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
