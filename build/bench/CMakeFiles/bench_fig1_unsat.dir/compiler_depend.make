# Empty compiler generated dependencies file for bench_fig1_unsat.
# This may be replaced when dependencies are built.
