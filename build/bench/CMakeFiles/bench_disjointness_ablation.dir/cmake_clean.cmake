file(REMOVE_RECURSE
  "CMakeFiles/bench_disjointness_ablation.dir/bench_disjointness_ablation.cc.o"
  "CMakeFiles/bench_disjointness_ablation.dir/bench_disjointness_ablation.cc.o.d"
  "bench_disjointness_ablation"
  "bench_disjointness_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disjointness_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
