# Empty compiler generated dependencies file for bench_disjointness_ablation.
# This may be replaced when dependencies are built.
