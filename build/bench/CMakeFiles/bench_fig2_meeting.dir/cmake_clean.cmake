file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_meeting.dir/bench_fig2_meeting.cc.o"
  "CMakeFiles/bench_fig2_meeting.dir/bench_fig2_meeting.cc.o.d"
  "bench_fig2_meeting"
  "bench_fig2_meeting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_meeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
