file(REMOVE_RECURSE
  "CMakeFiles/bench_implication_scaling.dir/bench_implication_scaling.cc.o"
  "CMakeFiles/bench_implication_scaling.dir/bench_implication_scaling.cc.o.d"
  "bench_implication_scaling"
  "bench_implication_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_implication_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
