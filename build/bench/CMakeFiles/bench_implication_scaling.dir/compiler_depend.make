# Empty compiler generated dependencies file for bench_implication_scaling.
# This may be replaced when dependencies are built.
