// bench_server — the crsatd service-layer trajectory harness. Like
// bench_parallel (and unlike the google-benchmark micro-benches), this
// is a standalone binary: it starts an in-process daemon on a loopback
// port, drives a mixed request workload (parse / check / lint /
// implications / witness) from several client-concurrency levels, and
// reports sustained request throughput plus p50/p99 latency. Every
// response is cross-checked against a reference captured single-file up
// front — a verdict mismatch or protocol error exits non-zero, so CI
// can gate on "the service never changes an answer under concurrency".
// With `--json <path>` it writes the BENCH_server.json shape committed
// at the repo root (gated by tools/bench_check.py --mode server).
//
// Usage:
//   bench_server [--json <path>] [--requests N] [--threads N]
//
// `--requests` is the per-client request count (default 120); CI's
// bench-smoke job passes a small value.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/crsat.h"
#include "src/server/client.h"
#include "src/server/server.h"

#ifndef CRSAT_SOURCE_DIR
#define CRSAT_SOURCE_DIR "."
#endif

namespace {

using Clock = std::chrono::steady_clock;
using crsat::server::Client;
using crsat::server::Reply;
using crsat::server::RequestType;
using crsat::server::ResponseStatus;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct SchemaFile {
  std::string name;
  std::string path;
  std::string text;
};

std::vector<SchemaFile> LoadSchemas() {
  const std::string base =
      std::string(CRSAT_SOURCE_DIR) + "/examples/schemas/";
  std::vector<SchemaFile> schemas;
  for (const char* name : {"university.cr", "figure1.cr", "meeting.cr"}) {
    SchemaFile file;
    file.name = name;
    file.path = base + name;
    std::ifstream in(file.path, std::ios::binary);
    if (!in) {
      std::cerr << "cannot open " << file.path << "\n";
      std::exit(2);
    }
    std::ostringstream text;
    text << in.rdbuf();
    file.text = text.str();
    schemas.push_back(std::move(file));
  }
  return schemas;
}

// The per-connection request mix, cycled by request index. `witness` is
// the expensive tail; the light probes around it are what the fair
// queueing keeps responsive.
struct Step {
  RequestType type;
  const char* payload;
};
constexpr Step kMix[] = {
    {RequestType::kCheck, ""},        {RequestType::kLint, ""},
    {RequestType::kImplications, "isa D C"},
    {RequestType::kCheck, ""},        {RequestType::kLint, "json"},
    {RequestType::kWitness, "text"},
};

std::string MixKey(const std::string& schema, int step) {
  return schema + "#" + std::to_string(step);
}

struct RunResult {
  int clients = 0;
  std::uint64_t requests = 0;
  double wall_ms = 0;
  double req_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t mismatches = 0;
};

// One client connection working through `requests` mixed requests
// against its schema, recording per-request latency and comparing every
// payload against the reference map.
void DriveClient(int port, const SchemaFile& schema, int requests,
                 const std::map<std::string, Reply>& reference,
                 std::vector<double>* latencies_out,
                 std::uint64_t* protocol_errors_out,
                 std::uint64_t* mismatches_out) {
  std::vector<double> latencies;
  std::uint64_t protocol_errors = 0;
  std::uint64_t mismatches = 0;
  Client client;
  if (!client.ConnectTcp(port).ok()) {
    *protocol_errors_out = 1;
    return;
  }
  auto parsed = client.Parse(schema.path, schema.text);
  if (!parsed.ok() || parsed->status != ResponseStatus::kOk) {
    *protocol_errors_out = 1;
    return;
  }
  constexpr int kMixSize = static_cast<int>(sizeof(kMix) / sizeof(kMix[0]));
  for (int i = 0; i < requests; ++i) {
    const int step = i % kMixSize;
    const Clock::time_point start = Clock::now();
    auto reply = client.Call(kMix[step].type, kMix[step].payload);
    const double elapsed = MillisSince(start);
    if (!reply.ok()) {
      ++protocol_errors;
      break;  // The transport is gone; nothing further to measure.
    }
    latencies.push_back(elapsed);
    const auto expected = reference.find(MixKey(schema.name, step));
    if (expected == reference.end() ||
        reply->status != expected->second.status ||
        reply->payload != expected->second.payload) {
      ++mismatches;
    }
  }
  *latencies_out = std::move(latencies);
  *protocol_errors_out = protocol_errors;
  *mismatches_out = mismatches;
}

double Percentile(std::vector<double> values, double fraction) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const std::size_t index = std::min(
      values.size() - 1,
      static_cast<std::size_t>(fraction * static_cast<double>(values.size())));
  return values[index];
}

RunResult RunAtConcurrency(int port, const std::vector<SchemaFile>& schemas,
                           int clients, int requests,
                           const std::map<std::string, Reply>& reference) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::uint64_t> protocol_errors(clients, 0);
  std::vector<std::uint64_t> mismatches(clients, 0);
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      DriveClient(port, schemas[c % schemas.size()], requests, reference,
                  &latencies[c], &protocol_errors[c], &mismatches[c]);
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  RunResult result;
  result.clients = clients;
  result.wall_ms = MillisSince(start);
  std::vector<double> all;
  for (int c = 0; c < clients; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    result.protocol_errors += protocol_errors[c];
    result.mismatches += mismatches[c];
  }
  result.requests = all.size();
  result.req_per_s = result.wall_ms > 0
                         ? 1000.0 * static_cast<double>(result.requests) /
                               result.wall_ms
                         : 0;
  result.p50_ms = Percentile(all, 0.50);
  result.p99_ms = Percentile(all, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int requests = 120;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--requests" && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else {
      std::cerr << "usage: bench_server [--json <path>] [--requests N] "
                   "[--threads N]\n";
      return 2;
    }
  }

  const std::vector<SchemaFile> schemas = LoadSchemas();

  crsat::server::ServerOptions options;
  options.port = 0;
  options.threads = threads;
  crsat::server::Server daemon(options);
  const crsat::Status started = daemon.Start();
  if (!started.ok()) {
    std::cerr << "daemon start failed: " << started.ToString() << "\n";
    return 2;
  }
  std::cout << "crsatd on " << daemon.endpoint() << " (threads="
            << crsat::GlobalThreadCount() << "), " << requests
            << " requests/client\n";

  // Reference pass: one request of each (schema, mix step), single-file.
  // Everything the concurrency sweeps produce must match these bytes.
  std::map<std::string, Reply> reference;
  for (const SchemaFile& schema : schemas) {
    Client client;
    if (!client.ConnectTcp(daemon.port()).ok()) {
      std::cerr << "reference connect failed\n";
      return 2;
    }
    auto parsed = client.Parse(schema.path, schema.text);
    if (!parsed.ok()) {
      std::cerr << "reference parse failed\n";
      return 2;
    }
    constexpr int kMixSize = static_cast<int>(sizeof(kMix) / sizeof(kMix[0]));
    for (int step = 0; step < kMixSize; ++step) {
      auto reply = client.Call(kMix[step].type, kMix[step].payload);
      if (!reply.ok()) {
        std::cerr << "reference request failed: "
                  << reply.status().ToString() << "\n";
        return 2;
      }
      reference[MixKey(schema.name, step)] = *reply;
    }
  }

  std::vector<RunResult> results;
  bool failed = false;
  for (int clients : {1, 2, 8}) {
    RunResult result =
        RunAtConcurrency(daemon.port(), schemas, clients, requests, reference);
    std::cout << "clients=" << result.clients << "  requests="
              << result.requests << "  wall=" << result.wall_ms
              << " ms  req/s=" << result.req_per_s << "  p50="
              << result.p50_ms << " ms  p99=" << result.p99_ms
              << " ms  protocol_errors=" << result.protocol_errors
              << "  mismatches=" << result.mismatches << "\n";
    if (result.protocol_errors != 0 || result.mismatches != 0 ||
        result.requests !=
            static_cast<std::uint64_t>(result.clients) * requests) {
      failed = true;
    }
    results.push_back(result);
  }

  daemon.BeginDrain();
  daemon.Wait();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"bench_server\",\n"
        << "  \"requests_per_client\": " << requests << ",\n"
        << "  \"workloads\": [\n    {\n      \"name\": \"mixed_loopback\",\n"
        << "      \"runs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      out << "        {\"clients\": " << r.clients << ", \"requests\": "
          << r.requests << ", \"wall_ms\": " << r.wall_ms
          << ", \"req_per_s\": " << r.req_per_s << ", \"p50_ms\": "
          << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
          << ", \"protocol_errors\": " << r.protocol_errors
          << ", \"mismatches\": " << r.mismatches << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }\n  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  if (failed) {
    std::cerr << "FAIL: protocol errors, verdict mismatches, or dropped "
                 "requests under concurrency\n";
    return 1;
  }
  return 0;
}
