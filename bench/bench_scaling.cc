// EXP-A: the complexity behaviour the paper states in Section 3.3 —
// "our method can be turned into an algorithm running in exponential time
// with respect to the size of the schema".
//
// Sweeps the number of classes, measuring expansion construction and the
// full satisfiability pipeline. Note the direction of the effect: with no
// ISA statements *every* nonempty subset of classes is a consistent
// compound class, so the expansion is largest; ISA statements (and, in
// the ablation bench, disjointness) prune it. The compound-class and
// compound-relationship counts are reported as counters so the
// exponential growth is visible next to the wall-clock.

#include <benchmark/benchmark.h>

#include "src/crsat.h"

namespace {

crsat::Schema MakeSchema(int num_classes, double isa_density,
                         std::uint32_t seed) {
  crsat::RandomSchemaParams params;
  params.seed = seed;
  params.num_classes = num_classes;
  params.num_relationships = 3;
  params.isa_density = isa_density;
  params.primary_card_probability = 0.8;
  params.refinement_probability = isa_density > 0 ? 0.4 : 0.0;
  return crsat::GenerateRandomSchema(params).value();
}

void BM_ExpansionIsaFree(benchmark::State& state) {
  crsat::Schema schema =
      MakeSchema(static_cast<int>(state.range(0)), 0.0, 11);
  size_t classes = 0;
  size_t relationships = 0;
  for (auto _ : state) {
    crsat::Expansion expansion = crsat::Expansion::Build(schema).value();
    classes = expansion.classes().size();
    relationships = expansion.relationships().size();
    benchmark::DoNotOptimize(expansion);
  }
  state.counters["compound_classes"] = static_cast<double>(classes);
  state.counters["compound_rels"] = static_cast<double>(relationships);
}
BENCHMARK(BM_ExpansionIsaFree)->DenseRange(4, 8, 2);

void BM_ExpansionWithIsa(benchmark::State& state) {
  crsat::Schema schema =
      MakeSchema(static_cast<int>(state.range(0)), 0.25, 11);
  size_t classes = 0;
  size_t relationships = 0;
  for (auto _ : state) {
    crsat::Expansion expansion = crsat::Expansion::Build(schema).value();
    classes = expansion.classes().size();
    relationships = expansion.relationships().size();
    benchmark::DoNotOptimize(expansion);
  }
  state.counters["compound_classes"] = static_cast<double>(classes);
  state.counters["compound_rels"] = static_cast<double>(relationships);
}
BENCHMARK(BM_ExpansionWithIsa)->DenseRange(4, 10, 2);

void BM_SatisfiabilityIsaFree(benchmark::State& state) {
  crsat::Schema schema =
      MakeSchema(static_cast<int>(state.range(0)), 0.0, 13);
  for (auto _ : state) {
    crsat::Expansion expansion = crsat::Expansion::Build(schema).value();
    crsat::SatisfiabilityChecker checker(expansion);
    benchmark::DoNotOptimize(checker.SatisfiableClasses().value());
  }
}
BENCHMARK(BM_SatisfiabilityIsaFree)->DenseRange(3, 5, 1);

void BM_SatisfiabilityWithIsa(benchmark::State& state) {
  crsat::Schema schema =
      MakeSchema(static_cast<int>(state.range(0)), 0.25, 13);
  for (auto _ : state) {
    crsat::Expansion expansion = crsat::Expansion::Build(schema).value();
    crsat::SatisfiabilityChecker checker(expansion);
    benchmark::DoNotOptimize(checker.SatisfiableClasses().value());
  }
}
BENCHMARK(BM_SatisfiabilityWithIsa)->DenseRange(3, 6, 1);

// Depth of the ISA chain matters less than breadth: a single chain of n
// classes has only n consistent "prefix" compound classes, so the method
// stays polynomial on chains — an instance of the Section 5 remark that
// schema structure can simplify the system.
void BM_SatisfiabilityIsaChain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  crsat::SchemaBuilder builder;
  for (int i = 0; i < n; ++i) {
    builder.AddClass("C" + std::to_string(i));
  }
  for (int i = 0; i + 1 < n; ++i) {
    builder.AddIsa("C" + std::to_string(i), "C" + std::to_string(i + 1));
  }
  builder.AddRelationship("R", {{"U", "C0"}, {"V", "C" + std::to_string(n - 1)}});
  builder.SetCardinality("C0", "R", "U", {1, 2});
  builder.SetCardinality("C" + std::to_string(n - 1), "R", "V", {1, 2});
  crsat::Schema schema = builder.Build().value();
  size_t classes = 0;
  for (auto _ : state) {
    crsat::Expansion expansion = crsat::Expansion::Build(schema).value();
    classes = expansion.classes().size();
    crsat::SatisfiabilityChecker checker(expansion);
    benchmark::DoNotOptimize(checker.SatisfiableClasses().value());
  }
  state.counters["compound_classes"] = static_cast<double>(classes);
}
BENCHMARK(BM_SatisfiabilityIsaChain)->DenseRange(4, 24, 4);

}  // namespace

BENCHMARK_MAIN();
