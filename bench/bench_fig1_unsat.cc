// Reproduces the paper's Figure 1: "A finitely unsatisfiable ER-diagram".
//
// The cardinality constraints force the number of R-tuples to be at least
// twice |C| and at most |D|, while the ISA statement forces |D| <= |C|;
// the only finite model is the empty one, so both classes are
// unsatisfiable. The bench prints the schema, the derived disequation
// system (in the paper's all-unknowns presentation), the verdicts, and the
// minimal unsatisfiable core.
//
// Paper's claim: "Obviously, this schema admits no finite database state."

#include <iostream>

#include "src/crsat.h"

namespace {

constexpr char kFigure1Text[] = R"(
schema Figure1 {
  class C, D;
  isa D < C;
  relationship R(V1: C, V2: D);
  card C in R.V1 = (2, *);
  card D in R.V2 = (0, 1);
}
)";

}  // namespace

int main() {
  std::cout << "=== Figure 1: a finitely unsatisfiable ER-diagram ===\n\n";
  crsat::NamedSchema parsed = crsat::ParseSchema(kFigure1Text).value();
  const crsat::Schema& schema = parsed.schema;
  std::cout << crsat::SchemaToText(schema, parsed.name) << "\n";

  crsat::Expansion expansion = crsat::Expansion::Build(schema).value();
  std::cout << expansion.ToString() << "\n";

  std::cout << "Disequation system (paper presentation, all unknowns):\n";
  crsat::LinearSystem presentation =
      crsat::SystemBuilder::BuildPresentationSystem(schema).value();
  std::cout << presentation.ToString() << "\n";

  crsat::SatisfiabilityChecker checker(expansion);
  std::cout << "Verdicts (paper: no finite database state):\n";
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  for (crsat::ClassId cls : schema.AllClasses()) {
    std::cout << "  " << schema.ClassName(cls) << ": "
              << (satisfiable[cls.value] ? "satisfiable"
                                         : "finitely UNSATISFIABLE")
              << "\n";
  }

  std::cout << "\nMinimal unsatisfiable core for C:\n";
  crsat::UnsatCore core =
      crsat::MinimizeUnsatCore(schema, schema.FindClass("C").value()).value();
  for (const crsat::CoreConstraint& constraint : core.constraints) {
    std::cout << "  - " << constraint.description << "\n";
  }

  // Sanity row the harness is checked against: the paper's verdict.
  bool reproduced = !satisfiable[0] && !satisfiable[1];
  std::cout << "\nPaper vs measured: unsatisfiable / "
            << (reproduced ? "unsatisfiable  [MATCH]"
                           : "satisfiable  [MISMATCH]")
            << "\n";
  return reproduced ? 0 : 1;
}
