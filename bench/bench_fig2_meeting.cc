// Reproduces the paper's running example across Figures 2-6:
//
//   Figure 2/3: the meeting CR-schema (DSL rendering of the CR-diagram),
//   Figure 4:   its expansion (compound classes/relationships + lifted
//               cardinalities),
//   Figure 5:   the system of disequations (both the paper's all-unknowns
//               presentation and the consistent-only system the reasoner
//               actually solves),
//   Figure 6:   an acceptable solution and a finite model derived from it,
//   Section 3.3 follow-up: adding minc(Discussant, Holds, U1) = 2 makes
//               the system unsolvable.
//
// Expected checks (from the paper):
//   - 5 consistent compound classes (C1, C3, C4, C5, C7),
//   - 12 consistent compound relationships for Holds, 6 for Participates,
//   - Speaker satisfiable, with a model of speaker-discussants and talks,
//   - the eager-discussant variant is class-unsatisfiable.

#include <iostream>

#include "src/crsat.h"

namespace {

constexpr char kMeetingText[] = R"(
schema Meeting {
  class Speaker, Discussant, Talk;
  isa Discussant < Speaker;
  relationship Holds(U1: Speaker, U2: Talk);
  relationship Participates(U3: Discussant, U4: Talk);
  card Speaker in Holds.U1 = (1, *);
  card Discussant in Holds.U1 = (0, 2);
  card Talk in Holds.U2 = (1, 1);
  card Discussant in Participates.U3 = (1, 1);
  card Talk in Participates.U4 = (1, *);
}
)";

bool g_all_match = true;

void Check(const std::string& what, bool condition) {
  std::cout << "  [" << (condition ? "MATCH" : "MISMATCH") << "] " << what
            << "\n";
  g_all_match = g_all_match && condition;
}

}  // namespace

int main() {
  crsat::NamedSchema parsed = crsat::ParseSchema(kMeetingText).value();
  const crsat::Schema& schema = parsed.schema;

  std::cout << "=== Figure 2/3: the meeting CR-schema ===\n\n"
            << crsat::SchemaToText(schema, parsed.name) << "\n";

  std::cout << "=== Figure 4: the expansion ===\n\n";
  crsat::Expansion expansion = crsat::Expansion::Build(schema).value();
  std::cout << expansion.ToString() << "\n";
  crsat::RelationshipId holds = schema.FindRelationship("Holds").value();
  crsat::RelationshipId participates =
      schema.FindRelationship("Participates").value();
  Check("5 consistent compound classes (paper: C1,C3,C4,C5,C7)",
        expansion.classes().size() == 5);
  Check("12 consistent compound relationships for Holds",
        expansion.RelationshipIndicesOf(holds).size() == 12);
  Check("6 consistent compound relationships for Participates",
        expansion.RelationshipIndicesOf(participates).size() == 6);

  std::cout << "\n=== Figure 5: the system of disequations ===\n\n";
  std::cout << "(a) Paper presentation, unknowns for all "
            << expansion.total_compound_class_count()
            << " compound classes and 49+49 compound relationships,\n"
            << "    inconsistent ones pinned to 0:\n\n";
  crsat::LinearSystem presentation =
      crsat::SystemBuilder::BuildPresentationSystem(schema).value();
  std::cout << presentation.ToString();
  std::cout << "\n(b) Consistent-only system actually solved ("
            << expansion.classes().size() << "+"
            << expansion.relationships().size() << " unknowns):\n\n";
  crsat::SatisfiabilityChecker checker(expansion);
  std::cout << checker.cr_system().system.ToString();

  std::cout << "\n=== Figure 6: an acceptable solution and its model ===\n\n";
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  Check("Speaker satisfiable", satisfiable[0]);
  Check("Discussant satisfiable", satisfiable[1]);
  Check("Talk satisfiable", satisfiable[2]);

  crsat::IntegerSolution solution =
      checker.AcceptableIntegerSolution().value();
  std::cout << "\nAcceptable integer solution (nonzero unknowns):\n";
  for (size_t i = 0; i < solution.class_counts.size(); ++i) {
    if (solution.class_counts[i].IsPositive()) {
      std::cout << "  Var(" << expansion.classes()[i].ToString(schema)
                << ") = " << solution.class_counts[i] << "\n";
    }
  }
  for (size_t i = 0; i < solution.rel_counts.size(); ++i) {
    if (solution.rel_counts[i].IsPositive()) {
      std::cout << "  Var(" << expansion.relationships()[i].ToString(schema)
                << ") = " << solution.rel_counts[i] << "\n";
    }
  }

  crsat::ClassId speaker = schema.FindClass("Speaker").value();
  crsat::Interpretation model =
      crsat::ModelBuilder::BuildModelForClass(checker, speaker).value();
  std::cout << "\nDerived finite model (paper's model has John, Mary and "
               "two talks):\n"
            << model.ToString();
  Check("model verifies against Definition 2.2",
        crsat::ModelChecker::IsModel(schema, model));
  // The paper's key structural property: every speaker is a discussant.
  crsat::ClassId discussant = schema.FindClass("Discussant").value();
  Check("speakers == discussants in the model",
        model.ClassExtension(speaker) == model.ClassExtension(discussant));

  std::cout << "\n=== Section 3.3 follow-up: eager discussants ===\n\n"
            << "Adding minc(Discussant, Holds, U1) = 2 ...\n";
  crsat::NamedSchema eager = crsat::ParseSchema(R"(
schema EagerMeeting {
  class Speaker, Discussant, Talk;
  isa Discussant < Speaker;
  relationship Holds(U1: Speaker, U2: Talk);
  relationship Participates(U3: Discussant, U4: Talk);
  card Speaker in Holds.U1 = (1, *);
  card Discussant in Holds.U1 = (2, 2);
  card Talk in Holds.U2 = (1, 1);
  card Discussant in Participates.U3 = (1, 1);
  card Talk in Participates.U4 = (1, *);
}
)")
                               .value();
  crsat::Expansion eager_expansion =
      crsat::Expansion::Build(eager.schema).value();
  crsat::SatisfiabilityChecker eager_checker(eager_expansion);
  std::vector<bool> eager_satisfiable =
      eager_checker.SatisfiableClasses().value();
  Check("system becomes unsolvable (all classes unsatisfiable)",
        !eager_satisfiable[0] && !eager_satisfiable[1] &&
            !eager_satisfiable[2]);

  std::cout << "\nOverall: " << (g_all_match ? "ALL MATCH" : "MISMATCHES")
            << "\n";
  return g_all_match ? 0 : 1;
}
