// bench_parallel — the performance-trajectory harness for the parallel,
// two-tier reasoning core. Unlike the google-benchmark micro-benches next
// to it, this is a standalone binary that (a) times whole reasoning
// workloads at several thread counts, (b) cross-checks that every verdict
// and witness is bit-identical across those thread counts (exiting
// non-zero otherwise, so CI can gate on it), and (c) reports the
// two-tier/warm-start counters from `SimplexStats`. With `--json <path>`
// it writes the numbers in the BENCH_*.json shape committed at the repo
// root (see README "Benchmarking").
//
// Usage:
//   bench_parallel [--json <path>] [--depth N] [--schemas N] [--repeat N]
//                  [--force-multithread]
//
// `--depth` caps the ISA-chain depth of the report workload and
// `--schemas` the number of random schemas in the sweep; CI's bench-smoke
// job passes small values. `--force-multithread` runs the multi-thread
// rows even on a single-core machine: the wall clocks there measure
// oversubscription, not scaling, so the rows carry an explicit
// `"oversubscribed": true` marker and tools/bench_check.py treats their
// timing as advisory — but the cross-thread determinism check (the part
// that matters on any core count) still runs for real.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/crsat.h"

#ifndef CRSAT_SOURCE_DIR
#define CRSAT_SOURCE_DIR "."
#endif

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

crsat::Schema ChainSchema(int depth) {
  // Same shape as bench_implication_scaling: an ISA chain with cardinality
  // pressure along a relationship pinned at both ends, so every implied
  // bound tightens through the whole chain.
  crsat::SchemaBuilder builder;
  for (int i = 0; i < depth; ++i) {
    builder.AddClass("C" + std::to_string(i));
  }
  for (int i = 0; i + 1 < depth; ++i) {
    builder.AddIsa("C" + std::to_string(i), "C" + std::to_string(i + 1));
  }
  builder.AddClass("T");
  builder.AddRelationship(
      "R", {{"U", "C" + std::to_string(depth - 1)}, {"V", "T"}});
  builder.SetCardinality("C" + std::to_string(depth - 1), "R", "U", {1, 4});
  builder.SetCardinality("C0", "R", "U", {2, 3});
  builder.SetCardinality("T", "R", "V", {1, 1});
  return builder.Build().value();
}

// Snapshot of the process-wide solver counters (plain integers).
struct StatsSnapshot {
  std::uint64_t solves = 0;
  std::uint64_t pivots = 0;
  std::uint64_t phase1_pivots = 0;
  std::uint64_t fast_solves = 0;
  std::uint64_t fast_pivots = 0;
  std::uint64_t tier_fallbacks = 0;
  std::uint64_t warm_start_hits = 0;
  std::uint64_t warm_start_misses = 0;
  std::uint64_t dual_pivots = 0;
  std::uint64_t incremental_hits = 0;
  std::uint64_t incremental_fallbacks = 0;
  std::uint64_t dominance_lookups = 0;
  std::uint64_t dominance_hits = 0;
  std::uint64_t derived_disjoint_pairs = 0;
  std::uint64_t pruned_subtrees = 0;
  std::uint64_t ln_short_circuits = 0;

  static StatsSnapshot Take() {
    const crsat::SimplexStats& stats = crsat::GetSimplexStats();
    StatsSnapshot snapshot;
    snapshot.solves = stats.solves.load();
    snapshot.pivots = stats.pivots.load();
    snapshot.phase1_pivots = stats.phase1_pivots.load();
    snapshot.fast_solves = stats.fast_solves.load();
    snapshot.fast_pivots = stats.fast_pivots.load();
    snapshot.tier_fallbacks = stats.tier_fallbacks.load();
    snapshot.warm_start_hits = stats.warm_start_hits.load();
    snapshot.warm_start_misses = stats.warm_start_misses.load();
    snapshot.dual_pivots = stats.dual_pivots.load();
    snapshot.incremental_hits = stats.incremental_hits.load();
    snapshot.incremental_fallbacks = stats.incremental_fallbacks.load();
    snapshot.dominance_lookups =
        crsat::GetImplicationStats().dominance_lookups.load();
    snapshot.dominance_hits =
        crsat::GetImplicationStats().dominance_hits.load();
    snapshot.derived_disjoint_pairs =
        crsat::GetExpansionStats().derived_disjoint_pairs.load();
    snapshot.pruned_subtrees = crsat::GetExpansionStats().pruned_subtrees.load();
    snapshot.ln_short_circuits =
        crsat::GetFastPathStats().ln_short_circuits.load();
    return snapshot;
  }

  static void ResetAll() {
    crsat::GetSimplexStats().Reset();
    crsat::GetImplicationStats().Reset();
    crsat::GetExpansionStats().Reset();
    crsat::GetFastPathStats().Reset();
  }
};

// One timed workload at one thread count.
struct Timing {
  int threads = 0;
  double wall_ms = 0;
  StatsSnapshot stats;
  std::string digest;  // Canonical result string; must match across runs.
  // True when the row was not run because the machine has no real
  // parallelism (see single_core below): timing a 4-thread pool on one
  // core only measures scheduler noise, and the committed BENCH numbers
  // would show meaningless sub-1.0 "speedups".
  bool skipped_single_core = false;
  // True when --force-multithread ran this row on a machine with fewer
  // cores than threads: the digest cross-check is real, the wall clock
  // is scheduler noise and must not be gated as a scaling number.
  bool oversubscribed = false;
};

struct Workload {
  std::string name;
  std::vector<Timing> timings;
  bool deterministic = true;
};

std::string DigestReport(const crsat::Schema& schema,
                         const std::vector<crsat::ImpliedCardinalityRow>& rows) {
  return crsat::ImpliedCardinalityReportToString(schema, rows);
}

// Times `run` (which must return a digest string) at each thread count and
// checks the digests agree.
template <typename Fn>
Workload TimeAtThreadCounts(const std::string& name,
                            const std::vector<int>& thread_counts, int repeat,
                            bool single_core, bool oversubscribe, Fn run) {
  Workload workload;
  workload.name = name;
  for (int threads : thread_counts) {
    if (single_core && threads > 1) {
      Timing timing;
      timing.threads = threads;
      timing.skipped_single_core = true;
      workload.timings.push_back(std::move(timing));
      std::cerr << "[bench_parallel] " << name << " threads=" << threads
                << " skipped (single core)\n";
      continue;
    }
    crsat::SetGlobalThreadCount(threads);
    StatsSnapshot::ResetAll();
    Timing timing;
    timing.threads = crsat::GlobalThreadCount();
    timing.oversubscribed = oversubscribe && timing.threads > 1;
    std::cerr << "[bench_parallel] " << name << " threads=" << timing.threads
              << (timing.oversubscribed ? " (oversubscribed)" : "") << "\n";
    Clock::time_point start = Clock::now();
    for (int i = 0; i < repeat; ++i) {
      timing.digest = run();
    }
    timing.wall_ms = MillisSince(start) / repeat;
    timing.stats = StatsSnapshot::Take();
    workload.timings.push_back(std::move(timing));
  }
  for (const Timing& timing : workload.timings) {
    if (!timing.skipped_single_core &&
        timing.digest != workload.timings.front().digest) {
      workload.deterministic = false;
    }
  }
  return workload;
}

std::string JsonEscape(const std::string& text) {
  std::string escaped;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      escaped += '\\';
    } else if (c == '\n') {
      escaped += "\\n";
      continue;
    }
    escaped += c;
  }
  return escaped;
}

std::string ToJson(const std::vector<Workload>& workloads,
                   bool all_deterministic) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"bench_parallel\",\n";
  out << "  \"hardware_concurrency\": "
      << static_cast<int>(std::thread::hardware_concurrency()) << ",\n";
  out << "  \"default_threads\": " << crsat::ThreadPool::DefaultThreadCount()
      << ",\n";
  out << "  \"deterministic_across_threads\": "
      << (all_deterministic ? "true" : "false") << ",\n";
  out << "  \"workloads\": [\n";
  for (size_t w = 0; w < workloads.size(); ++w) {
    const Workload& workload = workloads[w];
    double base_ms = workload.timings.empty()
                         ? 0
                         : workload.timings.front().wall_ms;
    out << "    {\n      \"name\": \"" << JsonEscape(workload.name)
        << "\",\n      \"deterministic\": "
        << (workload.deterministic ? "true" : "false")
        << ",\n      \"runs\": [\n";
    for (size_t t = 0; t < workload.timings.size(); ++t) {
      const Timing& timing = workload.timings[t];
      if (timing.skipped_single_core) {
        out << "        {\"threads\": " << timing.threads
            << ", \"skipped_single_core\": true}"
            << (t + 1 < workload.timings.size() ? "," : "") << "\n";
        continue;
      }
      const StatsSnapshot& stats = timing.stats;
      double speedup = timing.wall_ms > 0 ? base_ms / timing.wall_ms : 1.0;
      double fast_fraction =
          stats.pivots > 0
              ? static_cast<double>(stats.fast_pivots) / stats.pivots
              : 1.0;
      double fallback_rate =
          stats.solves > 0
              ? static_cast<double>(stats.tier_fallbacks) / stats.solves
              : 0.0;
      out << "        {\"threads\": " << timing.threads
          << (timing.oversubscribed ? ", \"oversubscribed\": true" : "")
          << ", \"wall_ms\": " << timing.wall_ms
          << ", \"speedup_vs_1\": " << speedup
          << ", \"solves\": " << stats.solves
          << ", \"pivots\": " << stats.pivots
          << ", \"phase1_pivots\": " << stats.phase1_pivots
          << ", \"fast_pivot_fraction\": " << fast_fraction
          << ", \"tier_fallback_rate\": " << fallback_rate
          << ", \"warm_start_hits\": " << stats.warm_start_hits
          << ", \"warm_start_misses\": " << stats.warm_start_misses
          << ", \"dual_pivots\": " << stats.dual_pivots
          << ", \"incremental_hits\": " << stats.incremental_hits
          << ", \"incremental_fallbacks\": " << stats.incremental_fallbacks
          << ", \"dominance_lookups\": " << stats.dominance_lookups
          << ", \"dominance_hits\": " << stats.dominance_hits
          << ", \"derived_disjoint_pairs\": " << stats.derived_disjoint_pairs
          << ", \"pruned_subtrees\": " << stats.pruned_subtrees
          << ", \"ln_short_circuits\": " << stats.ln_short_circuits << "}"
          << (t + 1 < workload.timings.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (w + 1 < workloads.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int depth = 10;
  int num_schemas = 8;
  int repeat = 3;
  bool force_multithread = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--depth" && i + 1 < argc) {
      depth = std::atoi(argv[++i]);
    } else if (arg == "--schemas" && i + 1 < argc) {
      num_schemas = std::atoi(argv[++i]);
    } else if (arg == "--repeat" && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    } else if (arg == "--force-multithread") {
      force_multithread = true;
    } else {
      std::cerr << "usage: bench_parallel [--json <path>] [--depth N] "
                   "[--schemas N] [--repeat N] [--force-multithread]\n";
      return EXIT_FAILURE;
    }
  }
  if (depth < 2 || num_schemas < 1 || repeat < 1) {
    std::cerr << "bench_parallel: invalid size arguments\n";
    return EXIT_FAILURE;
  }

  std::vector<int> thread_counts = {1, 2, 4};
  int hardware = crsat::ThreadPool::DefaultThreadCount();
  if (hardware > 4) {
    thread_counts.push_back(hardware);
  }
  // On a single-core machine the multi-thread rows measure nothing but
  // scheduler noise; emit them as explicitly skipped instead of recording
  // misleading sub-1.0 speedups — unless --force-multithread asked for
  // them anyway, in which case they run for the determinism cross-check
  // and carry an `oversubscribed` marker so nothing downstream mistakes
  // their wall clock for a scaling measurement.
  const bool oversubscribe = hardware <= 1 && force_multithread;
  const bool single_core = hardware <= 1 && !force_multithread;

  std::vector<Workload> workloads;

  // Workload 1: the implied-cardinality report — one engine (expansion)
  // per triple, built concurrently across the pool.
  {
    crsat::Schema schema = ChainSchema(depth);
    workloads.push_back(TimeAtThreadCounts(
        "implied_cardinality_report(chain depth=" + std::to_string(depth) +
            ")",
        thread_counts, repeat, single_core, oversubscribe, [&schema]() {
          crsat::Result<std::vector<crsat::ImpliedCardinalityRow>> report =
              crsat::BuildImpliedCardinalityReport(schema);
          if (!report.ok()) {
            std::cerr << report.status() << "\n";
            std::exit(EXIT_FAILURE);
          }
          return DigestReport(schema, *report);
        }));
  }

  // Workload 2: a batched implication sweep — CheckAll fans the probes of
  // one shared engine across the pool.
  {
    crsat::Schema schema = ChainSchema(depth);
    crsat::ClassId bottom = schema.FindClass("C0").value();
    crsat::RelationshipId rel = schema.FindRelationship("R").value();
    crsat::RoleId role = schema.FindRole("U").value();
    std::vector<crsat::ImplicationQuery> queries;
    for (std::uint64_t bound = 0; bound <= 8; ++bound) {
      queries.push_back({crsat::ImplicationQuery::Kind::kMin, bound});
      queries.push_back({crsat::ImplicationQuery::Kind::kMax, bound});
    }
    // The engine is created inside the run so every timing starts from the
    // same (cold) warm-start carry; otherwise later thread counts would
    // inherit the previous run's basis and report incomparable pivot
    // counts.
    workloads.push_back(TimeAtThreadCounts(
        "implication_check_all(" + std::to_string(queries.size()) +
            " queries)",
        thread_counts, repeat, single_core, oversubscribe, [&schema, bottom, rel, role, &queries]() {
          crsat::Result<crsat::CardinalityImplicationEngine> engine =
              crsat::CardinalityImplicationEngine::Create(schema, bottom, rel,
                                                          role);
          if (!engine.ok()) {
            std::cerr << engine.status() << "\n";
            std::exit(EXIT_FAILURE);
          }
          crsat::Result<std::vector<bool>> verdicts =
              engine->CheckAll(queries);
          if (!verdicts.ok()) {
            std::cerr << verdicts.status() << "\n";
            std::exit(EXIT_FAILURE);
          }
          std::string digest;
          for (bool verdict : *verdicts) {
            digest += verdict ? '1' : '0';
          }
          return digest;
        }));
  }

  // Workload 3: support computations (parallel LP probe rounds + warm
  // starts) over the example schemas and a random sweep. The digest folds
  // every verdict and the exact witness, so a single nondeterministic
  // Rational anywhere fails the run.
  {
    std::vector<crsat::Schema> schemas;
    std::vector<std::string> names;
    // lint_demo.cr is intentionally malformed (lint fixture); skip it.
    for (const char* file : {"figure1.cr", "meeting.cr", "university.cr"}) {
      std::string path =
          std::string(CRSAT_SOURCE_DIR) + "/examples/schemas/" + file;
      std::ifstream stream(path);
      if (!stream) {
        std::cerr << "bench_parallel: cannot open " << path << "\n";
        return EXIT_FAILURE;
      }
      std::ostringstream text;
      text << stream.rdbuf();
      crsat::Result<crsat::NamedSchema> parsed =
          crsat::ParseSchema(text.str());
      if (!parsed.ok()) {
        std::cerr << parsed.status() << "\n";
        return EXIT_FAILURE;
      }
      schemas.push_back(parsed->schema);
      names.push_back(file);
    }
    {
      // Figure 1's finitely-unsatisfiable core next to a satisfiable
      // component: the first support probe is feasible (the satisfiable
      // part carries it) but leaves the Figure-1 variables undetermined,
      // forcing further probe rounds — the rounds that exercise the
      // warm-start path.
      crsat::SchemaBuilder builder;
      builder.AddClass("C");
      builder.AddClass("D");
      builder.AddIsa("D", "C");
      builder.AddRelationship("R", {{"V1", "C"}, {"V2", "D"}});
      builder.SetCardinality("C", "R", "V1", {2, std::nullopt});
      builder.SetCardinality("D", "R", "V2", {0, 1});
      builder.AddClass("E");
      builder.AddClass("S");
      builder.AddRelationship("Q", {{"W1", "E"}, {"W2", "S"}});
      builder.SetCardinality("E", "Q", "W1", {1, 2});
      builder.SetCardinality("S", "Q", "W2", {1, 2});
      schemas.push_back(builder.Build().value());
      names.push_back("mixed(figure1+sat)");
    }
    for (int seed = 1; seed <= num_schemas; ++seed) {
      // The expansion is exponential in the class count; 5 classes keeps a
      // single support computation in the tens of milliseconds while still
      // exercising multi-round probe fixpoints.
      crsat::RandomSchemaParams params;
      params.seed = static_cast<std::uint32_t>(seed);
      params.num_classes = 5;
      params.num_relationships = 3;
      params.isa_density = 0.3;
      crsat::Result<crsat::Schema> schema =
          crsat::GenerateRandomSchema(params);
      if (!schema.ok()) {
        std::cerr << schema.status() << "\n";
        return EXIT_FAILURE;
      }
      schemas.push_back(std::move(*schema));
      names.push_back("random(seed=" + std::to_string(seed) + ")");
    }
    workloads.push_back(TimeAtThreadCounts(
        "support_sweep(" + std::to_string(schemas.size()) + " schemas)",
        thread_counts, repeat, single_core, oversubscribe, [&schemas, &names]() {
          std::string digest;
          for (size_t i = 0; i < schemas.size(); ++i) {
            crsat::Result<crsat::Expansion> expansion =
                crsat::Expansion::Build(schemas[i]);
            if (!expansion.ok()) {
              std::cerr << names[i] << ": " << expansion.status() << "\n";
              std::exit(EXIT_FAILURE);
            }
            crsat::SatisfiabilityChecker checker(*expansion);
            crsat::Result<crsat::AcceptableSupport> support =
                checker.Support();
            if (!support.ok()) {
              std::cerr << names[i] << ": " << support.status() << "\n";
              std::exit(EXIT_FAILURE);
            }
            digest += names[i] + ":";
            for (bool positive : support->positive) {
              digest += positive ? '1' : '0';
            }
            digest += "|";
            for (const crsat::Rational& value : support->witness) {
              digest += value.ToString() + ",";
            }
            digest += "\n";
          }
          return digest;
        }));
  }

  // Workload 4: witness synthesis (src/witness/) over satisfiable
  // schemas — the minimal-integer LP (warm started across schemas of the
  // same shape), LCM scaling, tuple assignment, and certification. The
  // digest is the exact materialized interpretation, so the synthesized
  // witness itself must be bit-identical across thread counts.
  {
    std::vector<crsat::Schema> schemas;
    std::vector<std::string> names;
    for (int seed = 1; seed <= num_schemas; ++seed) {
      crsat::RandomSchemaParams params;
      params.seed = static_cast<std::uint32_t>(seed) + 500;
      params.num_classes = 5;
      params.num_relationships = 3;
      params.isa_density = 0.3;
      crsat::Result<crsat::Schema> schema =
          crsat::GenerateRandomSchema(params);
      if (!schema.ok()) {
        std::cerr << schema.status() << "\n";
        return EXIT_FAILURE;
      }
      schemas.push_back(std::move(*schema));
      names.push_back("random(seed=" + std::to_string(seed + 500) + ")");
    }
    workloads.push_back(TimeAtThreadCounts(
        "witness_synthesis(" + std::to_string(schemas.size()) + " schemas)",
        thread_counts, repeat, single_core, oversubscribe, [&schemas, &names]() {
          std::string digest;
          for (size_t i = 0; i < schemas.size(); ++i) {
            crsat::Result<crsat::Expansion> expansion =
                crsat::Expansion::Build(schemas[i]);
            if (!expansion.ok()) {
              std::cerr << names[i] << ": " << expansion.status() << "\n";
              std::exit(EXIT_FAILURE);
            }
            crsat::SatisfiabilityChecker checker(*expansion);
            crsat::WitnessSynthesizer synthesizer(checker);
            crsat::WitnessOptions options;
            options.max_model_size = 2000000;
            crsat::Result<crsat::CertifiedWitness> witness =
                synthesizer.Synthesize(options);
            digest += names[i] + ":";
            if (witness.ok()) {
              digest += witness->interpretation().ToString();
            } else if (witness.status().code() ==
                       crsat::StatusCode::kInvalidArgument) {
              digest += "<no satisfiable class>";
            } else {
              std::cerr << names[i] << ": " << witness.status() << "\n";
              std::exit(EXIT_FAILURE);
            }
            digest += "\n";
          }
          return digest;
        }));
  }

  bool all_deterministic = true;
  for (const Workload& workload : workloads) {
    all_deterministic = all_deterministic && workload.deterministic;
  }

  // Human-readable summary.
  for (const Workload& workload : workloads) {
    std::cout << workload.name
              << (workload.deterministic ? "" : "  [NONDETERMINISTIC]")
              << "\n";
    double base_ms = workload.timings.front().wall_ms;
    for (const Timing& timing : workload.timings) {
      if (timing.skipped_single_core) {
        std::cout << "  threads=" << timing.threads
                  << "  skipped (single core)\n";
        continue;
      }
      const StatsSnapshot& stats = timing.stats;
      std::cout << "  threads=" << timing.threads
                << (timing.oversubscribed ? " (oversubscribed)" : "")
                << "  wall_ms=" << timing.wall_ms
                << "  speedup=" << (timing.wall_ms > 0 ? base_ms / timing.wall_ms : 1.0)
                << "  solves=" << stats.solves << "  pivots=" << stats.pivots
                << "  fast_pivots=" << stats.fast_pivots
                << "  fallbacks=" << stats.tier_fallbacks
                << "  warm_hits=" << stats.warm_start_hits
                << "  warm_misses=" << stats.warm_start_misses
                << "  dual_pivots=" << stats.dual_pivots
                << "  incr_hits=" << stats.incremental_hits
                << "  incr_fallbacks=" << stats.incremental_fallbacks
                << "  dom_hits=" << stats.dominance_hits << "/"
                << stats.dominance_lookups
                << "  pruned=" << stats.pruned_subtrees << "\n";
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "bench_parallel: cannot write " << json_path << "\n";
      return EXIT_FAILURE;
    }
    out << ToJson(workloads, all_deterministic);
    std::cout << "wrote " << json_path << "\n";
  }

  if (!all_deterministic) {
    std::cerr << "bench_parallel: results differ across thread counts\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
