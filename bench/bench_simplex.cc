// EXP-D: the LP phase. Section 3.3 rests on the classical result that
// "checking whether a system of linear homogeneous disequations admits a
// solution can be done in polynomial time"; this bench measures our exact
// rational simplex on random homogeneous systems of the same shape the
// reasoner produces (sums of relationship unknowns bounded by multiples
// of class unknowns), plus the Fourier-Motzkin cross-checking solver on
// small instances to expose its exponential blowup.

#include <random>

#include <benchmark/benchmark.h>

#include "src/crsat.h"

namespace {

// Builds a random homogeneous system shaped like Psi_S: `classes` class
// variables, `rels` relationship variables, and for each class variable a
// pair of minc/maxc rows against a random subset of relationship
// variables.
crsat::LinearSystem RandomConicSystem(int classes, int rels,
                                      std::uint32_t seed) {
  std::mt19937 rng(seed);
  crsat::LinearSystem system;
  std::vector<crsat::VarId> class_vars;
  std::vector<crsat::VarId> rel_vars;
  for (int i = 0; i < classes; ++i) {
    class_vars.push_back(system.AddVariable("c" + std::to_string(i)));
  }
  for (int i = 0; i < rels; ++i) {
    rel_vars.push_back(system.AddVariable("r" + std::to_string(i)));
  }
  for (int i = 0; i < classes; ++i) {
    crsat::LinearExpr sum;
    for (crsat::VarId rel_var : rel_vars) {
      if (rng() % 3 == 0) {
        sum.AddTerm(rel_var, crsat::Rational(1));
      }
    }
    if (sum.IsZero()) {
      sum.AddTerm(rel_vars[rng() % rel_vars.size()], crsat::Rational(1));
    }
    std::int64_t min = 1 + static_cast<std::int64_t>(rng() % 3);
    std::int64_t max = min + static_cast<std::int64_t>(rng() % 3);
    crsat::LinearExpr min_row = sum;
    min_row.AddTerm(class_vars[i], crsat::Rational(-min));
    system.AddGe(std::move(min_row));
    crsat::LinearExpr max_row = -sum;
    max_row.AddTerm(class_vars[i], crsat::Rational(max));
    system.AddGe(std::move(max_row));
  }
  return system;
}

void BM_SimplexFeasibility(benchmark::State& state) {
  int classes = static_cast<int>(state.range(0));
  crsat::LinearSystem system = RandomConicSystem(classes, classes * 4, 31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crsat::SimplexSolver::CheckFeasibility(system).value());
  }
  state.counters["vars"] = static_cast<double>(system.num_variables());
  state.counters["rows"] = static_cast<double>(system.num_constraints());
}
BENCHMARK(BM_SimplexFeasibility)->DenseRange(4, 32, 4);

void BM_SimplexWithStrictTarget(benchmark::State& state) {
  // The exact probe the satisfiability fixpoint performs: pin a target
  // variable to >= 1 and check feasibility.
  int classes = static_cast<int>(state.range(0));
  crsat::LinearSystem system = RandomConicSystem(classes, classes * 4, 37);
  crsat::LinearExpr target = crsat::LinearExpr::Var(0);
  target.AddConstant(crsat::Rational(-1));
  system.AddGe(std::move(target));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crsat::SimplexSolver::CheckFeasibility(system).value());
  }
}
BENCHMARK(BM_SimplexWithStrictTarget)->DenseRange(4, 32, 4);

void BM_MaximalSupport(benchmark::State& state) {
  int classes = static_cast<int>(state.range(0));
  crsat::LinearSystem system = RandomConicSystem(classes, classes * 4, 41);
  std::vector<bool> forced(system.num_variables(), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crsat::ComputeMaximalSupport(system, forced).value());
  }
}
BENCHMARK(BM_MaximalSupport)->DenseRange(4, 16, 4);

void BM_FourierMotzkin(benchmark::State& state) {
  // The cross-checking solver: doubly exponential in eliminated
  // variables; usable only on small systems, as the range shows.
  int classes = static_cast<int>(state.range(0));
  crsat::LinearSystem system = RandomConicSystem(classes, classes * 2, 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crsat::FourierMotzkinSolver::Solve(system).value());
  }
}
BENCHMARK(BM_FourierMotzkin)->DenseRange(2, 6, 1);

}  // namespace

BENCHMARK_MAIN();
