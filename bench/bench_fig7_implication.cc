// Reproduces the paper's Figure 7: "Inferences from the CR-diagram shown
// in Figure 2":
//
//   S |= Speaker <= Discussant
//   S |= maxc(Talk, Participates, U4) = 1
//   S |= maxc(Speaker, Holds, U1) = 1
//
// plus the tightest implied cardinality bounds the Section 4 machinery can
// derive for every legal (class, relationship, role) triple of the schema.

#include <iomanip>
#include <iostream>

#include "src/crsat.h"

namespace {

constexpr char kMeetingText[] = R"(
schema Meeting {
  class Speaker, Discussant, Talk;
  isa Discussant < Speaker;
  relationship Holds(U1: Speaker, U2: Talk);
  relationship Participates(U3: Discussant, U4: Talk);
  card Speaker in Holds.U1 = (1, *);
  card Discussant in Holds.U1 = (0, 2);
  card Talk in Holds.U2 = (1, 1);
  card Discussant in Participates.U3 = (1, 1);
  card Talk in Participates.U4 = (1, *);
}
)";

bool g_all_match = true;

void Row(const std::string& inference, bool implied, bool expected) {
  bool match = implied == expected;
  g_all_match = g_all_match && match;
  std::cout << "  " << std::left << std::setw(44) << inference
            << (implied ? "implied    " : "not implied")
            << (match ? "  [MATCH]" : "  [MISMATCH]") << "\n";
}

}  // namespace

int main() {
  crsat::NamedSchema parsed = crsat::ParseSchema(kMeetingText).value();
  const crsat::Schema& schema = parsed.schema;
  crsat::ClassId speaker = schema.FindClass("Speaker").value();
  crsat::ClassId discussant = schema.FindClass("Discussant").value();
  crsat::ClassId talk = schema.FindClass("Talk").value();
  crsat::RelationshipId holds = schema.FindRelationship("Holds").value();
  crsat::RelationshipId participates =
      schema.FindRelationship("Participates").value();
  crsat::RoleId u1 = schema.FindRole("U1").value();
  crsat::RoleId u4 = schema.FindRole("U4").value();

  std::cout << "=== Figure 7: inferences from the meeting schema ===\n\n";
  Row("S |= Speaker <= Discussant",
      crsat::ImplicationChecker::ImpliesIsa(schema, speaker, discussant)
          .value(),
      /*expected=*/true);
  Row("S |= maxc(Talk, Participates, U4) = 1",
      crsat::ImplicationChecker::ImpliesMaxCardinality(schema, talk,
                                                       participates, u4, 1)
          .value(),
      /*expected=*/true);
  Row("S |= maxc(Speaker, Holds, U1) = 1",
      crsat::ImplicationChecker::ImpliesMaxCardinality(schema, speaker,
                                                       holds, u1, 1)
          .value(),
      /*expected=*/true);

  // Negative controls: inferences the schema must NOT make.
  Row("S |= Talk <= Speaker (control)",
      crsat::ImplicationChecker::ImpliesIsa(schema, talk, speaker).value(),
      /*expected=*/false);
  Row("S |= maxc(Speaker, Holds, U1) = 0 (control)",
      crsat::ImplicationChecker::ImpliesMaxCardinality(schema, speaker,
                                                       holds, u1, 0)
          .value(),
      /*expected=*/false);

  std::cout
      << "\nTightest implied cardinalities (declared -> implied):\n";
  struct Triple {
    const char* label;
    crsat::ClassId cls;
    crsat::RelationshipId rel;
    crsat::RoleId role;
    const char* declared;
  };
  std::vector<Triple> triples = {
      {"(Speaker, Holds, U1)", speaker, holds, u1, "(1, *)"},
      {"(Discussant, Holds, U1)", discussant, holds, u1, "(0, 2)"},
      {"(Talk, Holds, U2)", talk, holds, schema.FindRole("U2").value(),
       "(1, 1)"},
      {"(Discussant, Participates, U3)", discussant, participates,
       schema.FindRole("U3").value(), "(1, 1)"},
      {"(Talk, Participates, U4)", talk, participates, u4, "(1, *)"},
  };
  for (const Triple& triple : triples) {
    std::uint64_t min = crsat::ImplicationChecker::TightestImpliedMin(
                            schema, triple.cls, triple.rel, triple.role)
                            .value();
    std::optional<std::uint64_t> max =
        crsat::ImplicationChecker::TightestImpliedMax(schema, triple.cls,
                                                      triple.rel, triple.role)
            .value();
    std::cout << "  " << std::left << std::setw(34) << triple.label
              << std::setw(10) << triple.declared << " -> (" << min << ", "
              << (max.has_value() ? std::to_string(*max) : "*") << ")\n";
  }

  std::cout << "\nOverall: " << (g_all_match ? "ALL MATCH" : "MISMATCHES")
            << "\n";
  return g_all_match ? 0 : 1;
}
