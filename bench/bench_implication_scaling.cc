// EXP-E: the cost of implication queries (Section 4). Every implication
// reduces to class satisfiability: ISA implication reuses the schema's
// own system; cardinality implication rebuilds the expansion with the
// auxiliary class Cexc, roughly doubling the compound-class count.
// Tightest-bound queries gallop+bisect, multiplying that cost by
// O(log bound).

#include <benchmark/benchmark.h>

#include "src/crsat.h"

namespace {

crsat::Schema ChainSchema(int depth) {
  // C0 <= C1 <= ... <= C_{depth-1}, with a relationship pinned at the two
  // ends and cardinality pressure along it — the implied bounds tighten
  // through the whole chain.
  crsat::SchemaBuilder builder;
  for (int i = 0; i < depth; ++i) {
    builder.AddClass("C" + std::to_string(i));
  }
  for (int i = 0; i + 1 < depth; ++i) {
    builder.AddIsa("C" + std::to_string(i), "C" + std::to_string(i + 1));
  }
  builder.AddClass("T");
  builder.AddRelationship("R", {{"U", "C" + std::to_string(depth - 1)},
                                {"V", "T"}});
  builder.SetCardinality("C" + std::to_string(depth - 1), "R", "U", {1, 4});
  builder.SetCardinality("C0", "R", "U", {2, 3});
  builder.SetCardinality("T", "R", "V", {1, 1});
  return builder.Build().value();
}

void BM_IsaImplication(benchmark::State& state) {
  crsat::Schema schema = ChainSchema(static_cast<int>(state.range(0)));
  crsat::ClassId bottom = schema.FindClass("C0").value();
  crsat::ClassId top =
      schema.FindClass("C" + std::to_string(state.range(0) - 1)).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crsat::ImplicationChecker::ImpliesIsa(schema, bottom, top).value());
    benchmark::DoNotOptimize(
        crsat::ImplicationChecker::ImpliesIsa(schema, top, bottom).value());
  }
}
BENCHMARK(BM_IsaImplication)->DenseRange(2, 10, 2);

void BM_CardinalityImplication(benchmark::State& state) {
  crsat::Schema schema = ChainSchema(static_cast<int>(state.range(0)));
  crsat::ClassId bottom = schema.FindClass("C0").value();
  crsat::RelationshipId r = schema.FindRelationship("R").value();
  crsat::RoleId u = schema.FindRole("U").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crsat::ImplicationChecker::ImpliesMinCardinality(
                                 schema, bottom, r, u, 2)
                                 .value());
    benchmark::DoNotOptimize(crsat::ImplicationChecker::ImpliesMaxCardinality(
                                 schema, bottom, r, u, 3)
                                 .value());
  }
}
BENCHMARK(BM_CardinalityImplication)->DenseRange(2, 10, 2);

void BM_TightestBounds(benchmark::State& state) {
  crsat::Schema schema = ChainSchema(static_cast<int>(state.range(0)));
  crsat::ClassId bottom = schema.FindClass("C0").value();
  crsat::RelationshipId r = schema.FindRelationship("R").value();
  crsat::RoleId u = schema.FindRole("U").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crsat::ImplicationChecker::TightestImpliedMin(
                                 schema, bottom, r, u)
                                 .value());
    benchmark::DoNotOptimize(crsat::ImplicationChecker::TightestImpliedMax(
                                 schema, bottom, r, u)
                                 .value());
  }
}
BENCHMARK(BM_TightestBounds)->DenseRange(2, 8, 2);

void BM_UnsatCoreExtraction(benchmark::State& state) {
  // Schema debugging on a Figure 1-style contradiction embedded in a
  // growing chain: deletion-based minimization costs one satisfiability
  // check per constraint.
  int depth = static_cast<int>(state.range(0));
  crsat::SchemaBuilder builder;
  for (int i = 0; i < depth; ++i) {
    builder.AddClass("C" + std::to_string(i));
  }
  for (int i = 0; i + 1 < depth; ++i) {
    builder.AddIsa("C" + std::to_string(i), "C" + std::to_string(i + 1));
  }
  builder.AddRelationship(
      "R", {{"U", "C" + std::to_string(depth - 1)}, {"V", "C0"}});
  builder.SetCardinality("C" + std::to_string(depth - 1), "R", "U",
                         {2, std::nullopt});
  builder.SetCardinality("C0", "R", "V", {0, 1});
  crsat::Schema schema = builder.Build().value();
  crsat::ClassId c0 = schema.FindClass("C0").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crsat::MinimizeUnsatCore(schema, c0).value());
  }
}
BENCHMARK(BM_UnsatCoreExtraction)->DenseRange(2, 8, 2);

}  // namespace

BENCHMARK_MAIN();
