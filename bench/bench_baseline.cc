// EXP-C: the full ISA-aware method against the Lenzerini-Nobili baseline
// (reference [15] of the paper) on the baseline's own fragment (ISA-free
// schemas, declarations on primary classes only).
//
// Expected shape: both agree on every verdict; the baseline is orders of
// magnitude faster and scales linearly in the schema, while the full
// method pays the exponential expansion even when no ISA is present
// (every subset of classes is a consistent compound class). This is the
// quantitative version of why the paper's contribution was needed *only*
// once ISA enters — and what the interaction costs.

#include <iostream>

#include <benchmark/benchmark.h>

#include "src/crsat.h"

namespace {

crsat::Schema IsaFreeSchema(int num_classes, std::uint32_t seed) {
  crsat::RandomSchemaParams params;
  params.seed = seed;
  params.num_classes = num_classes;
  params.num_relationships = 3;
  params.isa_density = 0.0;
  params.refinement_probability = 0.0;
  params.primary_card_probability = 0.9;
  return crsat::GenerateRandomSchema(params).value();
}

void BM_BaselineLenzeriniNobili(benchmark::State& state) {
  crsat::Schema schema =
      IsaFreeSchema(static_cast<int>(state.range(0)), 23);
  for (auto _ : state) {
    crsat::LnReasoner reasoner = crsat::LnReasoner::Create(schema).value();
    benchmark::DoNotOptimize(reasoner.SatisfiableClasses().value());
  }
  state.counters["unknowns"] =
      static_cast<double>(schema.num_classes() + schema.num_relationships());
}
BENCHMARK(BM_BaselineLenzeriniNobili)->DenseRange(4, 24, 4);

void BM_FullMethodOnIsaFree(benchmark::State& state) {
  crsat::Schema schema =
      IsaFreeSchema(static_cast<int>(state.range(0)), 23);
  size_t unknowns = 0;
  for (auto _ : state) {
    crsat::Expansion expansion = crsat::Expansion::Build(schema).value();
    crsat::SatisfiabilityChecker checker(expansion);
    benchmark::DoNotOptimize(checker.SatisfiableClasses().value());
    unknowns =
        static_cast<size_t>(checker.cr_system().system.num_variables());
  }
  state.counters["unknowns"] = static_cast<double>(unknowns);
}
BENCHMARK(BM_FullMethodOnIsaFree)->DenseRange(4, 5, 1);

// Agreement check printed before the timing runs.
void PrintAgreementTable() {
  std::cout << "=== Verdict agreement, baseline vs full method ===\n";
  std::cout << "  seed  classes  agree\n";
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    crsat::Schema schema = IsaFreeSchema(5, seed + 100);
    crsat::LnReasoner baseline = crsat::LnReasoner::Create(schema).value();
    crsat::Expansion expansion = crsat::Expansion::Build(schema).value();
    crsat::SatisfiabilityChecker checker(expansion);
    bool agree = baseline.SatisfiableClasses().value() ==
                 checker.SatisfiableClasses().value();
    std::cout << "  " << seed + 100 << "   5        "
              << (agree ? "yes" : "NO") << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  PrintAgreementTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
