// EXP-B: the paper's Section 5 remark that disjointness constraints "can
// also lead to a dramatic reduction of the size of the resulting system,
// by limiting the number of compound classes and compound relationships
// to be considered. Taking as an example the diagram of Figure 2, the
// natural restriction that talks and speakers be disjoint leads to a
// system of disequations with just a few unknowns."
//
// Part 1 prints the meeting-example ablation exactly; part 2 sweeps the
// number of disjointness groups on random schemas and reports system size
// and solve time via google-benchmark.

#include <iostream>

#include <benchmark/benchmark.h>

#include "src/crsat.h"

namespace {

constexpr char kMeetingText[] = R"(
schema Meeting {
  class Speaker, Discussant, Talk;
  isa Discussant < Speaker;
  relationship Holds(U1: Speaker, U2: Talk);
  relationship Participates(U3: Discussant, U4: Talk);
  card Speaker in Holds.U1 = (1, *);
  card Discussant in Holds.U1 = (0, 2);
  card Talk in Holds.U2 = (1, 1);
  card Discussant in Participates.U3 = (1, 1);
  card Talk in Participates.U4 = (1, *);
}
)";

void PrintMeetingAblation() {
  crsat::NamedSchema parsed = crsat::ParseSchema(kMeetingText).value();
  crsat::SchemaBuilder builder = parsed.schema.ToBuilder();
  builder.AddDisjointness({"Speaker", "Talk"});
  crsat::Schema disjoint_schema = builder.Build().value();

  crsat::Expansion plain = crsat::Expansion::Build(parsed.schema).value();
  crsat::Expansion pruned = crsat::Expansion::Build(disjoint_schema).value();
  crsat::SatisfiabilityChecker plain_checker(plain);
  crsat::SatisfiabilityChecker pruned_checker(pruned);

  std::cout << "=== Meeting-example ablation (paper, Section 5) ===\n\n";
  std::cout << "                          without disjoint   with disjoint "
               "Speaker,Talk\n";
  std::cout << "  compound classes        " << plain.classes().size()
            << "                   " << pruned.classes().size() << "\n";
  std::cout << "  compound relationships  " << plain.relationships().size()
            << "                  " << pruned.relationships().size() << "\n";
  std::cout << "  system unknowns         "
            << plain_checker.cr_system().system.num_variables()
            << "                  "
            << pruned_checker.cr_system().system.num_variables() << "\n";
  std::cout << "  system disequations     "
            << plain_checker.cr_system().system.num_constraints()
            << "                  "
            << pruned_checker.cr_system().system.num_constraints() << "\n";
  bool same_verdicts = plain_checker.SatisfiableClasses().value() ==
                       pruned_checker.SatisfiableClasses().value();
  std::cout << "  verdicts unchanged      "
            << (same_verdicts ? "yes" : "NO (disjointness was load-bearing)")
            << "\n\n";
}

crsat::Schema RandomSchemaWithDisjointness(int groups, std::uint32_t seed) {
  crsat::RandomSchemaParams params;
  params.seed = seed;
  params.num_classes = 8;
  params.num_relationships = 2;
  params.isa_density = 0.15;
  params.primary_card_probability = 0.7;
  params.num_disjointness_groups = groups;
  params.disjointness_group_size = 3;
  return crsat::GenerateRandomSchema(params).value();
}

void BM_ExpansionVsDisjointness(benchmark::State& state) {
  crsat::Schema schema =
      RandomSchemaWithDisjointness(static_cast<int>(state.range(0)), 17);
  size_t classes = 0;
  size_t rels = 0;
  for (auto _ : state) {
    crsat::Expansion expansion = crsat::Expansion::Build(schema).value();
    classes = expansion.classes().size();
    rels = expansion.relationships().size();
    benchmark::DoNotOptimize(expansion);
  }
  state.counters["compound_classes"] = static_cast<double>(classes);
  state.counters["compound_rels"] = static_cast<double>(rels);
}
BENCHMARK(BM_ExpansionVsDisjointness)->DenseRange(0, 6, 1);

void BM_SatisfiabilityVsDisjointness(benchmark::State& state) {
  // Smaller base schema so the zero-disjointness end stays tractable for
  // the LP phase.
  crsat::RandomSchemaParams params;
  params.seed = 19;
  params.num_classes = 5;
  params.num_relationships = 2;
  params.isa_density = 0.15;
  params.primary_card_probability = 0.7;
  params.num_disjointness_groups = static_cast<int>(state.range(0));
  params.disjointness_group_size = 2;
  crsat::Schema schema = crsat::GenerateRandomSchema(params).value();
  size_t unknowns = 0;
  for (auto _ : state) {
    crsat::Expansion expansion = crsat::Expansion::Build(schema).value();
    crsat::SatisfiabilityChecker checker(expansion);
    benchmark::DoNotOptimize(checker.SatisfiableClasses().value());
    unknowns =
        static_cast<size_t>(checker.cr_system().system.num_variables());
  }
  state.counters["unknowns"] = static_cast<double>(unknowns);
}
BENCHMARK(BM_SatisfiabilityVsDisjointness)->DenseRange(0, 4, 1);

}  // namespace

int main(int argc, char** argv) {
  PrintMeetingAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
